//! Word-level XNOR/popcount compute kernels over packed bit slices.
//!
//! These free functions are the single source of truth for the arithmetic
//! identity the whole system leans on: with the [`BinaryHv`] bit convention
//! (bit `1` ≡ bipolar `+1`, bit `0` ≡ `-1`, tail bits of the last word
//! zero), the bipolar dot product of two `D`-dimensional vectors packed into
//! `u64` words is
//!
//! ```text
//! dot(x, w) = D − 2·popcount(x XOR w)
//! ```
//!
//! because XOR marks exactly the disagreeing coordinates (each contributing
//! `−1` instead of `+1`). The masked variant restricts the product to the
//! coordinates kept by a dropout mask `m`:
//!
//! ```text
//! dot_m(x, w) = kept − 2·popcount((x XOR w) AND m),   kept = popcount(m)
//! ```
//!
//! Every result is an integer of magnitude at most `D`; for `D < 2²⁴` these
//! integers are exactly representable in `f32`, which is why the packed
//! matrix products built on these kernels are **bit-identical** to the dense
//! `f32` reference products, not merely close (see `binnet::packed`).
//!
//! Callers guarantee equal slice lengths; the kernels `debug_assert` it and
//! truncate to the shorter slice in release builds (the behaviour of `zip`).
//!
//! # Kernel tiers
//!
//! Each popcount-shaped kernel exists in two tiers: the portable scalar
//! reference (`*_scalar`, plain `u64::count_ones` loops) and an explicit
//! AVX2 implementation ([`avx2`], Harley–Seal CSA tree + `vpshufb` nibble
//! LUT). The un-suffixed entry points dispatch on [`active_tier`], which is
//! resolved **once** per process: the `LEHDC_KERNEL` env var (`scalar` or
//! `avx2`) wins if set, otherwise `is_x86_feature_detected!("avx2")`
//! decides. Both tiers compute exact integer popcounts, so their results are
//! bit-identical — enforced by the differential parity suite in
//! `tests/kernel_parity.rs`.
//!
//! [`BinaryHv`]: crate::BinaryHv

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

/// Env var that forces a kernel tier: `scalar` or `avx2` (case-insensitive).
///
/// Unset means auto-detect. Forcing `avx2` on a CPU without AVX2 falls back
/// to scalar with a one-time warning on stderr rather than crashing, so test
/// suites can force both tiers unconditionally and skip gracefully.
pub const KERNEL_ENV: &str = "LEHDC_KERNEL";

/// A compute tier the popcount kernels can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable `u64::count_ones` loops — the always-compiled reference.
    Scalar,
    /// Explicit AVX2 Harley–Seal popcount (see [`avx2`]); x86-64 with
    /// runtime AVX2 support only.
    Avx2,
}

impl KernelTier {
    /// The tier's name as accepted by [`KERNEL_ENV`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
        }
    }
}

/// Whether the AVX2 tier can run on this host (x86-64 with runtime AVX2).
#[must_use]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

static ACTIVE_TIER: OnceLock<KernelTier> = OnceLock::new();

/// The tier the un-suffixed kernels dispatch to, resolved once per process
/// (see the module docs for the `LEHDC_KERNEL` override semantics).
///
/// # Panics
///
/// Panics if `LEHDC_KERNEL` is set to anything other than `scalar` or
/// `avx2`.
#[inline]
pub fn active_tier() -> KernelTier {
    *ACTIVE_TIER.get_or_init(detect_tier)
}

fn detect_tier() -> KernelTier {
    match std::env::var(KERNEL_ENV) {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "scalar" => KernelTier::Scalar,
            "avx2" => {
                if avx2_available() {
                    KernelTier::Avx2
                } else {
                    eprintln!(
                        "{KERNEL_ENV}=avx2 requested but this CPU lacks AVX2; \
                         falling back to the scalar kernels"
                    );
                    KernelTier::Scalar
                }
            }
            other => panic!("{KERNEL_ENV} must be `scalar` or `avx2`, got `{other}`"),
        },
        Err(_) => {
            if avx2_available() {
                KernelTier::Avx2
            } else {
                KernelTier::Scalar
            }
        }
    }
}

/// Number of set bits across a packed slice (dispatches on [`active_tier`]).
#[inline]
#[must_use]
pub fn popcount_words(a: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == KernelTier::Avx2 {
        // SAFETY: the Avx2 tier is only selected on CPUs with AVX2.
        return unsafe { avx2::popcount_words(a) };
    }
    popcount_words_scalar(a)
}

/// Scalar reference tier of [`popcount_words`].
#[inline]
#[must_use]
pub fn popcount_words_scalar(a: &[u64]) -> usize {
    a.iter().map(|w| w.count_ones() as usize).sum()
}

/// [`popcount_words`] forced onto the AVX2 tier, for differential testing.
///
/// # Panics
///
/// Panics if AVX2 is unavailable — check [`avx2_available`] first.
#[cfg(target_arch = "x86_64")]
#[must_use]
pub fn popcount_words_avx2(a: &[u64]) -> usize {
    assert!(avx2_available(), "the AVX2 kernels need an AVX2-capable CPU");
    // SAFETY: availability checked above.
    unsafe { avx2::popcount_words(a) }
}

/// Hamming distance between two packed vectors: `popcount(a XOR b)`
/// (dispatches on [`active_tier`]).
#[inline]
#[must_use]
pub fn hamming_words(a: &[u64], b: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == KernelTier::Avx2 {
        // SAFETY: the Avx2 tier is only selected on CPUs with AVX2.
        return unsafe { avx2::hamming_words(a, b) };
    }
    hamming_words_scalar(a, b)
}

/// Scalar reference tier of [`hamming_words`].
#[inline]
#[must_use]
pub fn hamming_words_scalar(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len(), "word slices must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x ^ y).count_ones() as usize)
        .sum()
}

/// [`hamming_words`] forced onto the AVX2 tier, for differential testing.
///
/// # Panics
///
/// Panics if AVX2 is unavailable — check [`avx2_available`] first.
#[cfg(target_arch = "x86_64")]
#[must_use]
pub fn hamming_words_avx2(a: &[u64], b: &[u64]) -> usize {
    assert!(avx2_available(), "the AVX2 kernels need an AVX2-capable CPU");
    // SAFETY: availability checked above.
    unsafe { avx2::hamming_words(a, b) }
}

/// Bipolar dot product `d − 2·hamming` of two packed `d`-dimensional
/// vectors — the BNN pre-activation `En(x)ᵀ c_k` of the paper's Eq. 6.
#[inline]
#[must_use]
pub fn dot_words(d: usize, a: &[u64], b: &[u64]) -> i64 {
    d as i64 - 2 * hamming_words(a, b) as i64
}

/// Hamming distance restricted to the coordinates kept by `mask`:
/// `popcount((a XOR b) AND mask)` (dispatches on [`active_tier`]).
#[inline]
#[must_use]
pub fn masked_hamming_words(a: &[u64], b: &[u64], mask: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == KernelTier::Avx2 {
        // SAFETY: the Avx2 tier is only selected on CPUs with AVX2.
        return unsafe { avx2::masked_hamming_words(a, b, mask) };
    }
    masked_hamming_words_scalar(a, b, mask)
}

/// Scalar reference tier of [`masked_hamming_words`].
#[inline]
#[must_use]
pub fn masked_hamming_words_scalar(a: &[u64], b: &[u64], mask: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len(), "word slices must have equal length");
    debug_assert_eq!(a.len(), mask.len(), "mask must match the word slices");
    a.iter()
        .zip(b)
        .zip(mask)
        .map(|((x, y), m)| ((x ^ y) & m).count_ones() as usize)
        .sum()
}

/// [`masked_hamming_words`] forced onto the AVX2 tier, for differential
/// testing.
///
/// # Panics
///
/// Panics if AVX2 is unavailable — check [`avx2_available`] first.
#[cfg(target_arch = "x86_64")]
#[must_use]
pub fn masked_hamming_words_avx2(a: &[u64], b: &[u64], mask: &[u64]) -> usize {
    assert!(avx2_available(), "the AVX2 kernels need an AVX2-capable CPU");
    // SAFETY: availability checked above.
    unsafe { avx2::masked_hamming_words(a, b, mask) }
}

// ---------------------------------------------------------------------------
// Bit-sliced carry-save accumulation kernels
//
// `Accumulator` stores per-dimension bundle counters vertically: bit-plane
// `p` holds bit `p` of all `D` counters, packed 64 per word. Adding one
// packed hypervector is then a word-parallel ripple-carry ladder — each step
// is `t = plane & carry; plane ^= carry; carry = t` — and the majority
// threshold is a word-parallel bit-sliced comparison against `n/2`. These
// kernels are the rungs of that ladder; they follow the same
// dispatch / `_scalar` / `_avx2` tier pattern as the popcount kernels above
// and compute exact integers, so tiers are bit-identical.
// ---------------------------------------------------------------------------

/// One carry-save ripple step: `t = plane AND carry; plane ^= carry;
/// carry = t`, word-parallel. Returns the OR of the outgoing carry so
/// callers can stop rippling as soon as it dies (amortized O(1) planes per
/// add). Dispatches on [`active_tier`].
#[inline]
pub fn csa_step_words(plane: &mut [u64], carry: &mut [u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == KernelTier::Avx2 {
        // SAFETY: the Avx2 tier is only selected on CPUs with AVX2.
        return unsafe { avx2::csa_step_words(plane, carry) };
    }
    csa_step_words_scalar(plane, carry)
}

/// Scalar reference tier of [`csa_step_words`].
#[inline]
pub fn csa_step_words_scalar(plane: &mut [u64], carry: &mut [u64]) -> u64 {
    debug_assert_eq!(plane.len(), carry.len(), "plane and carry must match");
    let mut or = 0u64;
    for (p, c) in plane.iter_mut().zip(carry.iter_mut()) {
        let t = *p & *c;
        *p ^= *c;
        *c = t;
        or |= t;
    }
    or
}

/// [`csa_step_words`] forced onto the AVX2 tier, for differential testing.
///
/// # Panics
///
/// Panics if AVX2 is unavailable — check [`avx2_available`] first.
#[cfg(target_arch = "x86_64")]
pub fn csa_step_words_avx2(plane: &mut [u64], carry: &mut [u64]) -> u64 {
    assert!(avx2_available(), "the AVX2 kernels need an AVX2-capable CPU");
    // SAFETY: availability checked above.
    unsafe { avx2::csa_step_words(plane, carry) }
}

/// First ripple step with the incoming hypervector as the carry:
/// `carry = plane AND input; plane ^= input`, word-parallel, returning the
/// OR of the outgoing carry. This is how an add enters the plane ladder
/// without first copying `input` into a scratch buffer. Dispatches on
/// [`active_tier`].
#[inline]
pub fn csa_input_step_words(plane: &mut [u64], input: &[u64], carry: &mut [u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == KernelTier::Avx2 {
        // SAFETY: the Avx2 tier is only selected on CPUs with AVX2.
        return unsafe { avx2::csa_input_step_words(plane, input, carry) };
    }
    csa_input_step_words_scalar(plane, input, carry)
}

/// Scalar reference tier of [`csa_input_step_words`].
#[inline]
pub fn csa_input_step_words_scalar(plane: &mut [u64], input: &[u64], carry: &mut [u64]) -> u64 {
    debug_assert_eq!(plane.len(), input.len(), "plane and input must match");
    debug_assert_eq!(plane.len(), carry.len(), "plane and carry must match");
    let mut or = 0u64;
    for ((p, &x), c) in plane.iter_mut().zip(input).zip(carry.iter_mut()) {
        let t = *p & x;
        *p ^= x;
        *c = t;
        or |= t;
    }
    or
}

/// [`csa_input_step_words`] forced onto the AVX2 tier, for differential
/// testing.
///
/// # Panics
///
/// Panics if AVX2 is unavailable — check [`avx2_available`] first.
#[cfg(target_arch = "x86_64")]
pub fn csa_input_step_words_avx2(plane: &mut [u64], input: &[u64], carry: &mut [u64]) -> u64 {
    assert!(avx2_available(), "the AVX2 kernels need an AVX2-capable CPU");
    // SAFETY: availability checked above.
    unsafe { avx2::csa_input_step_words(plane, input, carry) }
}

/// Fused bind-and-add entry step: the XNOR bind `x = NOT (a XOR b)` (the
/// bipolar Hadamard product under the [`BinaryHv`] bit convention) feeds the
/// plane ladder directly — `carry = plane AND x; plane ^= x` — so bundling a
/// bound pair never materializes the bound hypervector. Returns the OR of
/// the outgoing carry. Dispatches on [`active_tier`].
///
/// The XNOR of two tail-clean operands has its tail bits **set**; callers
/// must mask the final word of `plane` afterwards (the outgoing carry is
/// tail-clean because the incoming plane was).
#[inline]
pub fn csa_bind_step_words(plane: &mut [u64], a: &[u64], b: &[u64], carry: &mut [u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == KernelTier::Avx2 {
        // SAFETY: the Avx2 tier is only selected on CPUs with AVX2.
        return unsafe { avx2::csa_bind_step_words(plane, a, b, carry) };
    }
    csa_bind_step_words_scalar(plane, a, b, carry)
}

/// Scalar reference tier of [`csa_bind_step_words`].
#[inline]
pub fn csa_bind_step_words_scalar(
    plane: &mut [u64],
    a: &[u64],
    b: &[u64],
    carry: &mut [u64],
) -> u64 {
    debug_assert_eq!(a.len(), b.len(), "operand slices must match");
    debug_assert_eq!(plane.len(), a.len(), "plane and operands must match");
    debug_assert_eq!(plane.len(), carry.len(), "plane and carry must match");
    let mut or = 0u64;
    for (((p, &x), &y), c) in plane.iter_mut().zip(a).zip(b).zip(carry.iter_mut()) {
        let bound = !(x ^ y);
        let t = *p & bound;
        *p ^= bound;
        *c = t;
        or |= t;
    }
    or
}

/// [`csa_bind_step_words`] forced onto the AVX2 tier, for differential
/// testing.
///
/// # Panics
///
/// Panics if AVX2 is unavailable — check [`avx2_available`] first.
#[cfg(target_arch = "x86_64")]
pub fn csa_bind_step_words_avx2(
    plane: &mut [u64],
    a: &[u64],
    b: &[u64],
    carry: &mut [u64],
) -> u64 {
    assert!(avx2_available(), "the AVX2 kernels need an AVX2-capable CPU");
    // SAFETY: availability checked above.
    unsafe { avx2::csa_bind_step_words(plane, a, b, carry) }
}

/// Word-parallel comparison of bit-sliced counters against the constant `k`:
/// on return, bit `i` of `gt` is set iff counter `i > k` and bit `i` of `eq`
/// iff counter `i == k`, restricted to the bits set in `eq` on entry (the
/// caller initializes `gt` to zero and `eq` to the valid-dimension mask).
///
/// `planes` is the plane-major concatenation of `planes.len() / words`
/// bit-planes of `words` words each, least-significant plane first — the
/// [`Accumulator`](crate::Accumulator) storage layout. The classic MSB-first
/// ladder runs entirely in registers per word: at plane `p`, lanes still
/// equal so far move to `gt` when `k`'s bit is 0 and the counter bit is 1,
/// and drop out of `eq` whenever the bits disagree. Dispatches on
/// [`active_tier`].
#[inline]
pub fn bitsliced_cmp_words(planes: &[u64], words: usize, k: u64, gt: &mut [u64], eq: &mut [u64]) {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == KernelTier::Avx2 {
        // SAFETY: the Avx2 tier is only selected on CPUs with AVX2.
        return unsafe { avx2::bitsliced_cmp_words(planes, words, k, gt, eq) };
    }
    bitsliced_cmp_words_scalar(planes, words, k, gt, eq);
}

/// Scalar reference tier of [`bitsliced_cmp_words`].
pub fn bitsliced_cmp_words_scalar(
    planes: &[u64],
    words: usize,
    k: u64,
    gt: &mut [u64],
    eq: &mut [u64],
) {
    let n_planes = if words == 0 { 0 } else { planes.len() / words };
    debug_assert_eq!(planes.len(), n_planes * words, "planes must be rectangular");
    debug_assert_eq!(gt.len(), words, "gt must span the dimension words");
    debug_assert_eq!(eq.len(), words, "eq must span the dimension words");
    if n_planes < 64 && (k >> n_planes) != 0 {
        // Every counter is below 2^planes ≤ k: nothing greater, nothing equal.
        gt.fill(0);
        eq.fill(0);
        return;
    }
    for p in (0..n_planes).rev() {
        let plane = &planes[p * words..(p + 1) * words];
        if (k >> p) & 1 == 1 {
            for (e, &pl) in eq.iter_mut().zip(plane) {
                *e &= pl;
            }
        } else {
            for ((g, e), &pl) in gt.iter_mut().zip(eq.iter_mut()).zip(plane) {
                *g |= *e & pl;
                *e &= !pl;
            }
        }
    }
}

/// [`bitsliced_cmp_words`] forced onto the AVX2 tier, for differential
/// testing.
///
/// # Panics
///
/// Panics if AVX2 is unavailable — check [`avx2_available`] first.
#[cfg(target_arch = "x86_64")]
pub fn bitsliced_cmp_words_avx2(
    planes: &[u64],
    words: usize,
    k: u64,
    gt: &mut [u64],
    eq: &mut [u64],
) {
    assert!(avx2_available(), "the AVX2 kernels need an AVX2-capable CPU");
    // SAFETY: availability checked above.
    unsafe { avx2::bitsliced_cmp_words(planes, words, k, gt, eq) }
}

/// Masked bipolar dot product `kept − 2·popcount((a XOR b) AND mask)`,
/// where `kept = popcount(mask)` is passed in so batch loops hoist it.
///
/// This is how input dropout becomes a per-batch bit mask instead of `f32`
/// zeros: dropped coordinates simply leave both the positive and negative
/// tallies, and the surviving product stays an exact integer.
#[inline]
#[must_use]
pub fn masked_dot_words(kept: usize, a: &[u64], b: &[u64], mask: &[u64]) -> i64 {
    kept as i64 - 2 * masked_hamming_words(a, b, mask) as i64
}

/// Batch kernel: the dot products of one packed query against many packed
/// rows, written into `out` in row order.
///
/// # Panics
///
/// Panics if `out` is shorter than the row iterator.
pub fn dots_into<'a, I>(d: usize, x: &[u64], rows: I, out: &mut [f32])
where
    I: IntoIterator<Item = &'a [u64]>,
{
    let mut n = 0;
    for (slot, row) in out.iter_mut().zip(rows) {
        *slot = dot_words(d, x, row) as f32;
        n += 1;
    }
    debug_assert!(n <= out.len());
}

/// Batch argmax kernel: the index of the packed row with the largest dot
/// product against `x` (ties resolve to the lowest index), or `None` for an
/// empty row set. Classification by minimum Hamming distance is exactly
/// this, since `dot = d − 2·hamming` is monotone in `−hamming`.
pub fn argmax_dot<'a, I>(x: &[u64], rows: I) -> Option<usize>
where
    I: IntoIterator<Item = &'a [u64]>,
{
    // max dot == min hamming; comparing hammings avoids needing `d`.
    let mut best: Option<(usize, usize)> = None;
    for (k, row) in rows.into_iter().enumerate() {
        let h = hamming_words(x, row);
        match best {
            Some((best_h, _)) if h >= best_h => {}
            _ => best = Some((h, k)),
        }
    }
    best.map(|(_, k)| k)
}

/// Default query-block size for [`argmax_dot_blocked_into`] and the packed
/// forward products: 64 packed 10k-bit queries are ~78 KB, which stays
/// cache-resident while each class row streams against the whole block.
pub const QUERY_BLOCK: usize = 64;

/// Picks a query-block size so one block of packed queries (`words_per_row`
/// `u64`s each) occupies roughly 16 KB — small enough to stay L1-resident
/// while a class row streams against it, large enough to amortize the row
/// loads. Clamped to `[8, 256]`; at the paper's `D = 10,000` (157 words)
/// this yields 13. Block size never affects results (every blocked kernel
/// is exact and block-invariant), only locality.
#[must_use]
pub fn query_block_for(words_per_row: usize) -> usize {
    const TARGET_BYTES: usize = 16 * 1024;
    (TARGET_BYTES / (words_per_row.max(1) * 8)).clamp(8, 256)
}

/// Packs the signs of `values` into bits, 64 per word: bit `j` of the
/// output is set iff `values[j] >= 0.0` (the paper's Eq. 8 binarization,
/// `sgn(0) = +1`; a NaN coordinate packs as `-1`). Branchless and
/// word-parallel — this is the kernel behind `RealHv::sign`, ~20× the
/// per-bit loop at `D = 10,000`. Tail bits of the last word stay zero.
///
/// # Panics
///
/// Panics if `out` has fewer than `values.len().div_ceil(64)` words.
pub fn pack_signs_words(values: &[f32], out: &mut [u64]) {
    let words = values.len().div_ceil(64);
    assert!(
        out.len() >= words,
        "sign output needs {words} words, got {}",
        out.len()
    );
    out[..words].fill(0);
    for (w, chunk) in values.chunks(64).enumerate() {
        let mut word = 0u64;
        for (b, &v) in chunk.iter().enumerate() {
            word |= u64::from(v >= 0.0) << b;
        }
        out[w] = word;
    }
}

/// Query-blocked batch argmax kernel: `out[i]` is the index of the packed
/// row with the largest dot product against `queries[i]`.
///
/// Instead of streaming every row per query (the [`argmax_dot`] access
/// pattern, which re-reads the whole `K × D` row set once per query), the
/// queries are processed in blocks of `block`: each row is loaded once per
/// block and compared against all queries in it. Within a block the row
/// index `k` ascends and a candidate wins only on a strictly smaller
/// Hamming distance, so ties resolve to the lowest row index — the result
/// is identical to per-query [`argmax_dot`] for **every** block size, kernel
/// tier, and caller-side chunking.
///
/// # Panics
///
/// Panics if `rows` is empty, `block` is zero, or `out.len()` differs from
/// `queries.len()`.
pub fn argmax_dot_blocked_into(
    queries: &[&[u64]],
    rows: &[&[u64]],
    block: usize,
    out: &mut [usize],
) {
    assert!(!rows.is_empty(), "argmax over an empty row set");
    assert!(block > 0, "query block size must be non-zero");
    assert_eq!(queries.len(), out.len(), "one output slot per query");
    // Blocking exists to amortize row loads when the row set outsizes L1;
    // a small row set stays cache-resident on its own, where the blocked
    // loop's extra bookkeeping only costs. Fall back to the per-query
    // argmax there — [`argmax_dot`] and the blocked loop are proven
    // identical for every block size, so this is purely a tiling choice.
    let row_bytes: usize = rows.iter().map(|r| size_of_val(*r)).sum();
    if row_bytes <= 16 * 1024 {
        for (q, slot) in queries.iter().zip(out.iter_mut()) {
            *slot = argmax_dot(q, rows.iter().copied()).expect("row set is non-empty");
        }
        return;
    }
    let mut best_h = vec![usize::MAX; block.min(queries.len())];
    for (q_blk, out_blk) in queries.chunks(block).zip(out.chunks_mut(block)) {
        let best = &mut best_h[..q_blk.len()];
        best.fill(usize::MAX);
        for (k, row) in rows.iter().enumerate() {
            for ((q, h_best), slot) in q_blk.iter().zip(best.iter_mut()).zip(out_blk.iter_mut()) {
                let h = hamming_words(q, row);
                if h < *h_best {
                    *h_best = h;
                    *slot = k;
                }
            }
        }
    }
}

/// Query-blocked batch dot kernel: `out[i·K + k]` is the exact integer dot
/// product of `queries[i]` against `rows[k]` (`K = rows.len()`), row-major.
///
/// Same blocking as [`argmax_dot_blocked_into`] — each row streams against a
/// cache-resident block of queries — but the full logit matrix is kept, for
/// strategies that need every per-class similarity rather than the argmax
/// (the enhanced/adaptive retraining updates). Every entry is an exact
/// integer, so the output is identical for every block size, kernel tier,
/// and caller-side chunking.
///
/// # Panics
///
/// Panics if `rows` is empty, `block` is zero, or `out.len()` differs from
/// `queries.len() · rows.len()`.
pub fn dots_blocked_into(
    d: usize,
    queries: &[&[u64]],
    rows: &[&[u64]],
    block: usize,
    out: &mut [i64],
) {
    assert!(!rows.is_empty(), "dot matrix over an empty row set");
    assert!(block > 0, "query block size must be non-zero");
    let k_rows = rows.len();
    assert_eq!(
        out.len(),
        queries.len() * k_rows,
        "one output slot per (query, row) pair"
    );
    let block = block.min(queries.len().max(1));
    for (q_blk, out_blk) in queries.chunks(block).zip(out.chunks_mut(block * k_rows)) {
        for (k, row) in rows.iter().enumerate() {
            for (i, q) in q_blk.iter().enumerate() {
                out_blk[i * k_rows + k] = dot_words(d, q, row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryHv, Dim};

    fn pair(d: usize) -> (BinaryHv, BinaryHv) {
        let mut rng = crate::rng::rng_for(5, 17);
        let dim = Dim::new(d);
        (
            BinaryHv::random(dim, &mut rng),
            BinaryHv::random(dim, &mut rng),
        )
    }

    #[test]
    fn kernels_agree_with_binaryhv_methods() {
        for d in [64, 100, 257, 10_000] {
            let (a, b) = pair(d);
            assert_eq!(hamming_words(a.as_words(), b.as_words()), a.hamming(&b));
            assert_eq!(dot_words(d, a.as_words(), b.as_words()), a.dot(&b));
            assert_eq!(popcount_words(a.as_words()), a.count_ones());
        }
    }

    #[test]
    fn full_mask_reduces_to_unmasked() {
        let d = 300;
        let (a, b) = pair(d);
        let mask = BinaryHv::ones(Dim::new(d));
        let kept = popcount_words(mask.as_words());
        assert_eq!(kept, d);
        assert_eq!(
            masked_dot_words(kept, a.as_words(), b.as_words(), mask.as_words()),
            a.dot(&b)
        );
        assert_eq!(
            masked_hamming_words(a.as_words(), b.as_words(), mask.as_words()),
            a.hamming(&b)
        );
    }

    #[test]
    fn masked_dot_matches_scalar_reference() {
        let d = 500;
        let (a, b) = pair(d);
        let mask = BinaryHv::from_fn(Dim::new(d), |i| i % 3 != 0);
        let kept = popcount_words(mask.as_words());
        let expect: i64 = (0..d)
            .filter(|&i| mask.get(i))
            .map(|i| i64::from(a.bipolar(i) * b.bipolar(i)))
            .sum();
        assert_eq!(
            masked_dot_words(kept, a.as_words(), b.as_words(), mask.as_words()),
            expect
        );
    }

    #[test]
    fn empty_mask_drops_everything() {
        let d = 128;
        let (a, b) = pair(d);
        let zeros = BinaryHv::zeros(Dim::new(d));
        assert_eq!(
            masked_dot_words(0, a.as_words(), b.as_words(), zeros.as_words()),
            0
        );
    }

    #[test]
    fn dots_into_fills_in_row_order() {
        let d = 256;
        let mut rng = crate::rng::rng_for(8, 1);
        let dim = Dim::new(d);
        let x = BinaryHv::random(dim, &mut rng);
        let rows: Vec<BinaryHv> = (0..5).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let mut out = vec![0.0f32; 5];
        dots_into(d, x.as_words(), rows.iter().map(BinaryHv::as_words), &mut out);
        for (k, row) in rows.iter().enumerate() {
            assert_eq!(out[k], x.dot(row) as f32);
        }
    }

    #[test]
    fn argmax_dot_picks_nearest_row_with_low_index_ties() {
        let d = 512;
        let mut rng = crate::rng::rng_for(9, 2);
        let dim = Dim::new(d);
        let rows: Vec<BinaryHv> = (0..4).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        for (k, row) in rows.iter().enumerate() {
            let got = argmax_dot(row.as_words(), rows.iter().map(BinaryHv::as_words));
            assert_eq!(got, Some(k));
        }
        // exact duplicate rows tie; the lowest index wins
        let dup = vec![rows[2].clone(), rows[2].clone()];
        assert_eq!(
            argmax_dot(rows[2].as_words(), dup.iter().map(BinaryHv::as_words)),
            Some(0)
        );
        assert_eq!(argmax_dot::<[&[u64]; 0]>(rows[0].as_words(), []), None);
    }

    #[test]
    fn blocked_argmax_matches_per_query_argmax_at_any_block() {
        let d = 700;
        let mut rng = crate::rng::rng_for(10, 3);
        let dim = Dim::new(d);
        let rows: Vec<BinaryHv> = (0..6).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        // duplicate a row so ties are actually exercised
        let mut rows = rows;
        rows.push(rows[1].clone());
        let queries: Vec<BinaryHv> = (0..37).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let row_words: Vec<&[u64]> = rows.iter().map(BinaryHv::as_words).collect();
        let query_words: Vec<&[u64]> = queries.iter().map(BinaryHv::as_words).collect();
        let expect: Vec<usize> = queries
            .iter()
            .map(|q| argmax_dot(q.as_words(), row_words.iter().copied()).unwrap())
            .collect();
        for block in [1usize, 2, 7, 37, 64, usize::MAX] {
            let mut out = vec![usize::MAX; queries.len()];
            argmax_dot_blocked_into(&query_words, &row_words, block, &mut out);
            assert_eq!(out, expect, "block={block}");
        }
        // queries tying two duplicate rows resolve to the lower index
        let mut out = [usize::MAX; 1];
        argmax_dot_blocked_into(&[rows[1].as_words()], &row_words, 4, &mut out);
        assert_eq!(out, [1]);
    }

    #[test]
    fn blocked_argmax_large_row_set_takes_blocked_loop() {
        // 16 rows at D = 10,000 is ~20 KB of rows — past the L1-resident
        // fast path, so this pins the blocked loop itself (the other tests
        // in this module all fit the fast path).
        let d = 10_000;
        let mut rng = crate::rng::rng_for(11, 6);
        let dim = Dim::new(d);
        let rows: Vec<BinaryHv> = (0..16).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let queries: Vec<BinaryHv> = (0..33).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let row_words: Vec<&[u64]> = rows.iter().map(BinaryHv::as_words).collect();
        let query_words: Vec<&[u64]> = queries.iter().map(BinaryHv::as_words).collect();
        assert!(row_words.iter().map(|r| size_of_val(*r)).sum::<usize>() > 16 * 1024);
        let expect: Vec<usize> = queries
            .iter()
            .map(|q| argmax_dot(q.as_words(), row_words.iter().copied()).unwrap())
            .collect();
        for block in [1usize, 7, 33, 64] {
            let mut out = vec![usize::MAX; queries.len()];
            argmax_dot_blocked_into(&query_words, &row_words, block, &mut out);
            assert_eq!(out, expect, "block={block}");
        }
    }

    #[test]
    fn query_block_for_targets_l1_and_clamps() {
        // 157 words/row (D = 10,000) → ⌊16384 / 1256⌋ = 13 queries/block.
        assert_eq!(query_block_for(157), 13);
        // tiny rows clamp high, huge rows clamp low, zero never panics
        assert_eq!(query_block_for(1), 256);
        assert_eq!(query_block_for(0), 256);
        assert_eq!(query_block_for(100_000), 8);
    }

    #[test]
    fn blocked_dots_match_per_pair_dot_at_any_block() {
        let d = 700;
        let mut rng = crate::rng::rng_for(12, 4);
        let dim = Dim::new(d);
        let rows: Vec<BinaryHv> = (0..5).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let queries: Vec<BinaryHv> = (0..23).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let row_words: Vec<&[u64]> = rows.iter().map(BinaryHv::as_words).collect();
        let query_words: Vec<&[u64]> = queries.iter().map(BinaryHv::as_words).collect();
        let expect: Vec<i64> = queries
            .iter()
            .flat_map(|q| rows.iter().map(|r| q.dot(r)))
            .collect();
        for block in [1usize, 2, 7, 23, 64, usize::MAX] {
            let mut out = vec![i64::MIN; expect.len()];
            dots_blocked_into(d, &query_words, &row_words, block, &mut out);
            assert_eq!(out, expect, "block={block}");
        }
        // empty query set is a no-op
        dots_blocked_into(d, &[], &row_words, 8, &mut []);
    }

    #[test]
    #[should_panic(expected = "empty row set")]
    fn blocked_dots_reject_empty_rows() {
        let (a, _) = pair(64);
        dots_blocked_into(64, &[a.as_words()], &[], 8, &mut [0]);
    }

    #[test]
    fn blocked_argmax_handles_empty_query_set() {
        let (a, _) = pair(64);
        argmax_dot_blocked_into(&[], &[a.as_words()], 8, &mut []);
    }

    #[test]
    #[should_panic(expected = "empty row set")]
    fn blocked_argmax_rejects_empty_rows() {
        let (a, _) = pair(64);
        argmax_dot_blocked_into(&[a.as_words()], &[], 8, &mut [0]);
    }

    #[test]
    fn tier_names_and_detection_are_consistent() {
        assert_eq!(KernelTier::Scalar.name(), "scalar");
        assert_eq!(KernelTier::Avx2.name(), "avx2");
        let tier = active_tier();
        if tier == KernelTier::Avx2 {
            assert!(avx2_available(), "Avx2 tier requires AVX2 hardware");
        }
        // the active tier is stable across calls (resolved once)
        assert_eq!(active_tier(), tier);
    }

    #[test]
    fn dispatched_kernels_match_scalar_reference() {
        // whatever tier is active, results must equal the scalar reference
        for d in [1usize, 63, 64, 65, 255, 256, 257, 1024, 10_000] {
            let (a, b) = pair(d);
            let mask = BinaryHv::from_fn(Dim::new(d), |i| i % 5 != 0);
            assert_eq!(
                popcount_words(a.as_words()),
                popcount_words_scalar(a.as_words()),
                "popcount d={d}"
            );
            assert_eq!(
                hamming_words(a.as_words(), b.as_words()),
                hamming_words_scalar(a.as_words(), b.as_words()),
                "hamming d={d}"
            );
            assert_eq!(
                masked_hamming_words(a.as_words(), b.as_words(), mask.as_words()),
                masked_hamming_words_scalar(a.as_words(), b.as_words(), mask.as_words()),
                "masked d={d}"
            );
        }
    }
}
