//! Parity suite for the bit-sliced carry-save [`Accumulator`].
//!
//! Proves three independent equivalences:
//!
//! 1. **Representation parity** — bit-sliced vertical counters agree with a
//!    plain horizontal `u32`-counter reference across boundary widths,
//!    odd/even counts (ties), and any chunked-merge order.
//! 2. **Tier parity** — the AVX2 carry-save and compare kernels are
//!    bit-identical to their always-compiled scalar references (run when the
//!    CPU has AVX2; `scripts/check.sh` additionally forces the whole suite
//!    under both `LEHDC_KERNEL` tiers).
//! 3. **Golden pins** — encoder outputs and the `sgn(0)` tie-break RNG
//!    stream are byte-identical to the pre-bit-slicing seed encoder, pinned
//!    as literal words captured from that implementation.

use hdc::kernels;
use hdc::{Accumulator, BinaryHv, Dim, Encode, NgramEncoder, RecordEncoder};
use testkit::{Rng, Xoshiro256pp};
use threadpool::ThreadPool;

/// Boundary dimensionalities: single word, word edges, multi-word edges, a
/// ragged prime, and the paper's D = 10000.
const WIDTHS: &[usize] = &[1, 63, 64, 65, 127, 128, 129, 517, 4096, 10000];

/// The horizontal reference: one `u32` counter per dimension, incremented a
/// bit at a time — the representation the bit-sliced planes replaced.
struct RefAccumulator {
    ones: Vec<u32>,
    n: u32,
    dim: Dim,
}

impl RefAccumulator {
    fn new(dim: Dim) -> Self {
        RefAccumulator {
            ones: vec![0; dim.get()],
            n: 0,
            dim,
        }
    }

    fn add(&mut self, hv: &BinaryHv) {
        for (i, one) in self.ones.iter_mut().enumerate() {
            *one += u32::from(hv.get(i));
        }
        self.n += 1;
    }

    fn sum(&self, i: usize) -> i64 {
        2 * i64::from(self.ones[i]) - i64::from(self.n)
    }

    fn threshold<R: Rng + ?Sized>(&self, rng: &mut R) -> BinaryHv {
        BinaryHv::from_fn(self.dim, |i| match self.sum(i).cmp(&0) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => rng.random::<bool>(),
        })
    }
}

fn random_hvs(d: Dim, count: usize, seed: u64) -> Vec<BinaryHv> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..count).map(|_| BinaryHv::random(d, &mut rng)).collect()
}

#[test]
fn bitsliced_matches_u32_reference_across_widths_and_parities() {
    for &d in WIDTHS {
        let dim = Dim::new(d);
        // Odd n (no ties possible) and even n (ties guaranteed somewhere).
        for n in [1usize, 2, 6, 7] {
            let hvs = random_hvs(dim, n, 0xACC0 + d as u64 + n as u64);
            let mut fast = Accumulator::new(dim);
            let mut reference = RefAccumulator::new(dim);
            for hv in &hvs {
                fast.add(hv);
                reference.add(hv);
            }
            for i in 0..d {
                assert_eq!(fast.sum(i), reference.sum(i), "D={d} n={n} dim {i}");
            }
            let mut rng_a = Xoshiro256pp::seed_from_u64(1);
            let mut rng_b = rng_a.clone();
            assert_eq!(
                fast.threshold(&mut rng_a),
                reference.threshold(&mut rng_b),
                "threshold D={d} n={n}"
            );
            // Identical draw counts in identical order: streams stay aligned.
            assert_eq!(
                rng_a.random::<u64>(),
                rng_b.random::<u64>(),
                "tie RNG stream D={d} n={n}"
            );
            assert_eq!(
                fast.threshold_deterministic(),
                BinaryHv::from_fn(dim, |i| reference.sum(i) >= 0),
                "deterministic threshold D={d} n={n}"
            );
        }
    }
}

#[test]
fn add_bound_matches_u32_reference_on_materialized_binds() {
    for &d in &[1usize, 64, 65, 517] {
        let dim = Dim::new(d);
        let hvs = random_hvs(dim, 12, 0xB1AD + d as u64);
        let mut fused = Accumulator::new(dim);
        let mut reference = RefAccumulator::new(dim);
        for pair in hvs.chunks(2) {
            fused.add_bound(pair[0].as_words(), pair[1].as_words());
            reference.add(&pair[0].bind(&pair[1]));
        }
        for i in 0..d {
            assert_eq!(fused.sum(i), reference.sum(i), "D={d} dim {i}");
        }
        assert_eq!(
            fused.threshold_deterministic(),
            BinaryHv::from_fn(dim, |i| reference.sum(i) >= 0),
            "D={d}"
        );
    }
}

#[test]
fn merge_is_invariant_to_chunking_and_order() {
    let dim = Dim::new(517);
    let hvs = random_hvs(dim, 23, 0x3A6E);
    let mut sequential = Accumulator::new(dim);
    for hv in &hvs {
        sequential.add(hv);
    }
    // Several chunkings, including empty and single-element chunks, merged
    // forwards, backwards, and as a nested tree.
    let chunkings: &[&[usize]] = &[&[23], &[1, 22], &[7, 0, 9, 7], &[11, 12], &[2; 11]];
    for bounds in chunkings {
        let mut parts = Vec::new();
        let mut start = 0;
        for &len in bounds.iter() {
            let mut part = Accumulator::new(dim);
            for hv in &hvs[start..start + len] {
                part.add(hv);
            }
            parts.push(part);
            start += len;
        }
        if start < 23 {
            let mut part = Accumulator::new(dim);
            for hv in &hvs[start..] {
                part.add(hv);
            }
            parts.push(part);
        }
        let mut forward = Accumulator::new(dim);
        for part in &parts {
            forward.merge(part);
        }
        assert_eq!(forward, sequential, "forward merge {bounds:?}");

        let mut backward = Accumulator::new(dim);
        for part in parts.iter().rev() {
            backward.merge(part);
        }
        assert_eq!(backward, sequential, "backward merge {bounds:?}");

        // Nested tree: fold pairs together before the final merge.
        while parts.len() > 1 {
            let right = parts.pop().unwrap();
            parts.last_mut().unwrap().merge(&right);
        }
        assert_eq!(parts[0], sequential, "tree merge {bounds:?}");
    }
}

// ---------------------------------------------------------------------------
// Tier parity: AVX2 kernels vs the scalar references
// ---------------------------------------------------------------------------

fn random_words(len: usize, rng: &mut Xoshiro256pp) -> Vec<u64> {
    (0..len).map(|_| rng.random::<u64>()).collect()
}

/// Word counts covering the AVX2 4-word block plus every scalar-tail length.
const WORD_LENS: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 9, 16, 157];

#[test]
fn csa_step_kernels_agree_across_tiers() {
    if !hdc::avx2_available() {
        eprintln!("skipping: CPU lacks AVX2");
        return;
    }
    let mut rng = Xoshiro256pp::seed_from_u64(0x51A5);
    for &len in WORD_LENS {
        let plane0 = random_words(len, &mut rng);
        let carry0 = random_words(len, &mut rng);
        let input = random_words(len, &mut rng);
        let other = random_words(len, &mut rng);

        let (mut ps, mut cs) = (plane0.clone(), carry0.clone());
        let (mut pv, mut cv) = (plane0.clone(), carry0.clone());
        assert_eq!(
            kernels::csa_step_words_scalar(&mut ps, &mut cs),
            kernels::csa_step_words_avx2(&mut pv, &mut cv),
            "csa_step OR len={len}"
        );
        assert_eq!((ps, cs), (pv, cv), "csa_step state len={len}");

        let (mut ps, mut cs) = (plane0.clone(), carry0.clone());
        let (mut pv, mut cv) = (plane0.clone(), carry0.clone());
        assert_eq!(
            kernels::csa_input_step_words_scalar(&mut ps, &input, &mut cs),
            kernels::csa_input_step_words_avx2(&mut pv, &input, &mut cv),
            "csa_input_step OR len={len}"
        );
        assert_eq!((ps, cs), (pv, cv), "csa_input_step state len={len}");

        let (mut ps, mut cs) = (plane0.clone(), carry0.clone());
        let (mut pv, mut cv) = (plane0.clone(), carry0.clone());
        assert_eq!(
            kernels::csa_bind_step_words_scalar(&mut ps, &input, &other, &mut cs),
            kernels::csa_bind_step_words_avx2(&mut pv, &input, &other, &mut cv),
            "csa_bind_step OR len={len}"
        );
        assert_eq!((ps, cs), (pv, cv), "csa_bind_step state len={len}");
    }
}

#[test]
fn bitsliced_cmp_kernels_agree_across_tiers() {
    if !hdc::avx2_available() {
        eprintln!("skipping: CPU lacks AVX2");
        return;
    }
    let mut rng = Xoshiro256pp::seed_from_u64(0xC323);
    for &words in WORD_LENS {
        for n_planes in [0usize, 1, 2, 3, 5, 9] {
            let planes = random_words(n_planes * words, &mut rng);
            // k values straddling every interesting regime: zero, mid-range,
            // the short-circuit guard (k >= 2^planes), and huge.
            for k in [0u64, 1, 2, 5, 1 << n_planes, u64::MAX / 3] {
                let mask = random_words(words, &mut rng);
                let mut gt_s = vec![0u64; words];
                let mut eq_s = mask.clone();
                kernels::bitsliced_cmp_words_scalar(&planes, words, k, &mut gt_s, &mut eq_s);
                let mut gt_v = vec![0u64; words];
                let mut eq_v = mask.clone();
                kernels::bitsliced_cmp_words_avx2(&planes, words, k, &mut gt_v, &mut eq_v);
                assert_eq!(
                    (gt_s, eq_s),
                    (gt_v, eq_v),
                    "bitsliced_cmp words={words} planes={n_planes} k={k}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Golden pins: encoder outputs byte-identical to the seed encoder
// ---------------------------------------------------------------------------

fn sample(n: usize, phase: f32) -> Vec<f32> {
    (0..n)
        .map(|i| 0.5 + 0.5 * ((i as f32 * 0.7 + phase).sin()))
        .collect()
}

/// FNV-1a over packed words, for pinning wide vectors compactly.
fn fold(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Captured from the horizontal-counter seed encoder (pre bit-slicing):
/// `RecordEncoder` D=517, 37 features, 16 levels, seed 42, `sample(37, 0.4)`.
const GOLDEN_RECORD_517: [u64; 9] = [
    0xca8dc0bf556d9e28,
    0x71be1961b5d80a06,
    0x99142bae72a10dff,
    0x7c9e85ef1c3442ee,
    0xf54f07615b110c9d,
    0xd413e41fc1f44b15,
    0x7cbe2c4966d9369d,
    0x70956b5977f98ac6,
    0x000000000000001d,
];

/// Same provenance: D=130, 6 features (even count — ties taken), 8 levels,
/// seed 3, `sample(6, 2.0)`.
const GOLDEN_RECORD_130: [u64; 3] = [
    0xce6ecd8db72e824d,
    0x9b94454af955293b,
    0x0000000000000001,
];

/// Same provenance: `NgramEncoder` D=257, 9 features, window 4, 8 levels,
/// seed 11, `sample(9, 0.9)`.
const GOLDEN_NGRAM_257: [u64; 5] = [
    0xbc455a5c735fa342,
    0x291e47aac3510397,
    0xb570b6459933081d,
    0x2f47dee1d35c0445,
    0x0000000000000000,
];

#[test]
fn record_encoder_matches_seed_golden_vectors() {
    let enc = RecordEncoder::builder(Dim::new(517), 37)
        .levels(16)
        .seed(42)
        .build()
        .unwrap();
    let hv = enc.encode(&sample(37, 0.4)).unwrap();
    assert_eq!(hv.as_words(), GOLDEN_RECORD_517, "D=517 golden");

    // Even feature count: the tie-break RNG stream itself is under test.
    let enc = RecordEncoder::builder(Dim::new(130), 6)
        .levels(8)
        .seed(3)
        .build()
        .unwrap();
    let hv = enc.encode(&sample(6, 2.0)).unwrap();
    assert_eq!(hv.as_words(), GOLDEN_RECORD_130, "D=130 tie golden");

    // Paper-scale shape, pinned by count + fold hash.
    let enc = RecordEncoder::builder(Dim::new(10_000), 784)
        .levels(32)
        .seed(7)
        .build()
        .unwrap();
    let hv = enc.encode(&sample(784, 1.3)).unwrap();
    assert_eq!(hv.count_ones(), 5002, "D=10000 ones");
    assert_eq!(fold(hv.as_words()), 0x6ca7d3650dfbc65b, "D=10000 fold");
}

#[test]
fn ngram_encoder_matches_seed_golden_vectors() {
    let enc = NgramEncoder::new(Dim::new(257), 9, 4, 8, (0.0, 1.0), 11).unwrap();
    let hv = enc.encode(&sample(9, 0.9)).unwrap();
    assert_eq!(hv.as_words(), GOLDEN_NGRAM_257, "D=257 golden");

    let enc = NgramEncoder::new(Dim::new(1024), 12, 3, 8, (0.0, 1.0), 7).unwrap();
    let hv = enc.encode(&sample(12, 0.3)).unwrap();
    assert_eq!(hv.count_ones(), 520, "D=1024 ones");
    assert_eq!(fold(hv.as_words()), 0xc758ada4e9141768, "D=1024 fold");
}

#[test]
fn golden_vectors_hold_across_threads_and_chunkings() {
    let enc = RecordEncoder::builder(Dim::new(517), 37)
        .levels(16)
        .seed(42)
        .build()
        .unwrap();
    let x = sample(37, 0.4);
    for threads in [1usize, 2, 4] {
        let pooled = enc.encode_pooled(&x, &ThreadPool::new(threads)).unwrap();
        assert_eq!(pooled.as_words(), GOLDEN_RECORD_517, "pooled t={threads}");
        // Corpus path: three copies of the row, chunked across workers.
        let flat: Vec<f32> = x.iter().chain(&x).chain(&x).copied().collect();
        for hv in enc.encode_all(&flat, threads).unwrap() {
            assert_eq!(hv.as_words(), GOLDEN_RECORD_517, "encode_all t={threads}");
        }
    }
}
