//! Seed-stream independence: the `derive_seed(seed, stream)` scheme must
//! hand out generators that are (a) exactly reproducible and (b) pairwise
//! uncorrelated, since every subsystem (item memories, tie-breaking,
//! dropout, shuffling) draws from its own stream of one experiment seed.

use hdc::rng::{derive_seed, rng_for};
use testkit::{Rng, Xoshiro256pp};

const N: usize = 1000;

fn stream_outputs(seed: u64, stream: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::seed_from_u64(derive_seed(seed, stream));
    (0..N).map(|_| rng.random::<u64>()).collect()
}

/// Pearson correlation of the two sequences viewed as centered f64 samples.
fn correlation(a: &[u64], b: &[u64]) -> f64 {
    let to_f = |x: u64| (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    let n = a.len() as f64;
    let (xs, ys): (Vec<f64>, Vec<f64>) = (
        a.iter().map(|&v| to_f(v)).collect(),
        b.iter().map(|&v| to_f(v)).collect(),
    );
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

#[test]
fn two_streams_are_reproducible_across_constructions() {
    for stream in [0u64, 1, 17, u64::MAX] {
        let first = stream_outputs(42, stream);
        let second = stream_outputs(42, stream);
        assert_eq!(first, second, "stream {stream} must replay identically");
    }
}

#[test]
fn rng_for_matches_manual_derivation() {
    let mut a = rng_for(42, 3);
    let mut b = Xoshiro256pp::seed_from_u64(derive_seed(42, 3));
    let xs: Vec<u64> = (0..N).map(|_| a.random::<u64>()).collect();
    let ys: Vec<u64> = (0..N).map(|_| b.random::<u64>()).collect();
    assert_eq!(xs, ys);
}

#[test]
fn sibling_streams_are_uncorrelated() {
    // Adjacent streams of the same parent seed: the worst case for a weak
    // splitting scheme (e.g. seed+stream would make stream k+1 a near-copy).
    let a = stream_outputs(42, 0);
    let b = stream_outputs(42, 1);
    assert_ne!(a, b);
    let r = correlation(&a, &b);
    // For n=1000 i.i.d. pairs, |r| ~ O(1/sqrt(n)) ≈ 0.03; 0.1 gives slack.
    assert!(r.abs() < 0.1, "streams 0/1 correlate: r = {r}");
}

#[test]
fn many_sibling_streams_stay_uncorrelated() {
    let streams: Vec<Vec<u64>> = (0..8).map(|s| stream_outputs(7, s)).collect();
    for i in 0..streams.len() {
        for j in (i + 1)..streams.len() {
            let r = correlation(&streams[i], &streams[j]);
            assert!(r.abs() < 0.1, "streams {i}/{j} correlate: r = {r}");
        }
    }
}

#[test]
fn same_stream_of_different_seeds_is_uncorrelated() {
    let a = stream_outputs(1, 5);
    let b = stream_outputs(2, 5);
    let r = correlation(&a, &b);
    assert!(r.abs() < 0.1, "seeds 1/2 share structure on stream 5: r = {r}");
}
