//! Property-based tests for the hypervector algebra invariants.

use hdc::{Accumulator, BinaryHv, Dim, Encode, Quantizer, RealHv, RecordEncoder};
use testkit::prelude::*;
use testkit::Xoshiro256pp;

fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![1usize..=8, 60usize..=70, 120usize..=260]
}

fn hv(dim: usize, seed: u64) -> BinaryHv {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    BinaryHv::random(Dim::new(dim), &mut rng)
}

proptest! {
    #[test]
    fn bind_is_commutative(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = hv(d, s1);
        let b = hv(d, s2);
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn bind_is_associative(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        let (a, b, c) = (hv(d, s1), hv(d, s2), hv(d, s3));
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn bind_is_self_inverse(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = hv(d, s1);
        let b = hv(d, s2);
        prop_assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn binding_preserves_hamming_distance(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        // bind by a common key is an isometry of Hamming space
        let (a, b, key) = (hv(d, s1), hv(d, s2), hv(d, s3));
        prop_assert_eq!(a.bind(&key).hamming(&b.bind(&key)), a.hamming(&b));
    }

    #[test]
    fn hamming_is_a_metric(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        let (a, b, c) = (hv(d, s1), hv(d, s2), hv(d, s3));
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn dot_matches_hamming_identity(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = hv(d, s1);
        let b = hv(d, s2);
        prop_assert_eq!(a.dot(&b), d as i64 - 2 * a.hamming(&b) as i64);
    }

    #[test]
    fn negation_flips_dot_sign(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = hv(d, s1);
        let b = hv(d, s2);
        prop_assert_eq!(a.dot(&b.negated()), -a.dot(&b));
    }

    #[test]
    fn rotation_is_a_hamming_isometry(d in arb_dim(), s1 in any::<u64>(), s2 in any::<u64>(), k in 0usize..300) {
        let a = hv(d, s1);
        let b = hv(d, s2);
        prop_assert_eq!(a.rotated(k).hamming(&b.rotated(k)), a.hamming(&b));
    }

    #[test]
    fn rotation_matches_per_bit_reference(d in arb_dim(), s in any::<u64>(), k in 0usize..600) {
        // The word-level shift-and-stitch must agree with the definition:
        // output bit j is input bit (j - k) mod d.
        let a = hv(d, s);
        let kk = k % d;
        let reference = BinaryHv::from_fn(Dim::new(d), |j| a.get((j + d - kk) % d));
        prop_assert_eq!(a.rotated(k), reference);
    }

    #[test]
    fn accumulator_threshold_of_odd_copies_is_identity(d in arb_dim(), s in any::<u64>(), copies in 1usize..6) {
        let a = hv(d, s);
        let mut acc = Accumulator::new(Dim::new(d));
        for _ in 0..(2 * copies - 1) {
            acc.add(&a);
        }
        let mut rng = Xoshiro256pp::seed_from_u64(s);
        prop_assert_eq!(acc.threshold(&mut rng), a);
    }

    #[test]
    fn real_sign_roundtrip(d in arb_dim(), s in any::<u64>()) {
        let a = hv(d, s);
        prop_assert_eq!(RealHv::from_binary(&a).sign(), a);
    }

    #[test]
    fn real_dot_binary_is_symmetric_in_scaling(d in arb_dim(), s in any::<u64>(), alpha in 0.01f32..4.0) {
        let a = hv(d, s);
        let mut c = RealHv::zeros(Dim::new(d));
        c.add_scaled(&a, alpha);
        let expect = alpha as f64 * d as f64;
        prop_assert!((c.dot_binary(&a) - expect).abs() < 1e-3 * expect.max(1.0));
    }

    #[test]
    fn quantizer_is_monotone(n_levels in 2usize..64, raw in collection::vec(-100.0f32..100.0, 2..40)) {
        let q = Quantizer::new(-100.0, 100.0, n_levels).unwrap();
        let mut vals = raw;
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let levels: Vec<usize> = vals.iter().map(|&v| q.level(v)).collect();
        for w in levels.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for &l in &levels {
            prop_assert!(l < n_levels);
        }
    }

    #[test]
    fn record_encoding_is_a_pure_function(seed in any::<u64>(), x in collection::vec(0.0f32..1.0, 6)) {
        let enc = RecordEncoder::builder(Dim::new(256), 6).levels(8).seed(seed).build().unwrap();
        prop_assert_eq!(enc.encode(&x).unwrap(), enc.encode(&x).unwrap());
    }
}
