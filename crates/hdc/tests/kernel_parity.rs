//! Differential kernel-parity suite: the SIMD tier must agree with the
//! scalar reference **bit-for-bit** on every kernel entry point.
//!
//! All kernels compute exact integer popcounts — no floating point — so
//! SIMD-vs-scalar equality is `==`, never an epsilon. The property tests
//! generate widths straddling every word (64-bit) and lane (256-bit)
//! boundary plus the Harley–Seal block boundary (1024 bits / 16 vectors),
//! random tail words, and degenerate masks; the explicit regression cases
//! pin the boundary widths from the issue (D ∈ {1, 63, 64, 65, 255, 256,
//! 257, 1024, 10000}).
//!
//! On hosts without AVX2 the differential assertions skip (there is nothing
//! to diff), but the scalar self-consistency and dispatch tests still run.

use hdc::kernels;
use hdc::{BinaryHv, Dim};
use testkit::prelude::*;
use testkit::Xoshiro256pp;

/// Widths (in bits) straddling word, lane, and Harley–Seal block boundaries.
const BOUNDARY_DIMS: &[usize] = &[
    1, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1023, 1024, 1025, 4096, 10_000,
];

fn hv(dim: usize, seed: u64) -> BinaryHv {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    BinaryHv::random(Dim::new(dim), &mut rng)
}

/// Word lengths worth probing: 0..4 words (pure scalar tail), 4..64 words
/// (leftover vectors), and ≥64 words (full Harley–Seal blocks + remainder).
fn arb_len() -> impl Strategy<Value = usize> {
    prop_oneof![0usize..=5, 14usize..=18, 60usize..=68, 120usize..=130]
}

fn arb_words() -> impl Strategy<Value = Vec<u64>> {
    arb_len().prop_flat_map(|n| collection::vec(any::<u64>(), n))
}

fn arb_word_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    arb_len().prop_flat_map(|n| {
        (
            collection::vec(any::<u64>(), n),
            collection::vec(any::<u64>(), n),
        )
    })
}

fn arb_word_triple() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
    arb_len().prop_flat_map(|n| {
        (
            collection::vec(any::<u64>(), n),
            collection::vec(any::<u64>(), n),
            collection::vec(any::<u64>(), n),
        )
    })
}

#[cfg(target_arch = "x86_64")]
proptest! {
    #[test]
    fn popcount_simd_matches_scalar(words in arb_words()) {
        if kernels::avx2_available() {
            prop_assert_eq!(
                kernels::popcount_words_avx2(&words),
                kernels::popcount_words_scalar(&words)
            );
        }
    }

    #[test]
    fn hamming_simd_matches_scalar(pair in arb_word_pair()) {
        let (a, b) = pair;
        if kernels::avx2_available() {
            prop_assert_eq!(
                kernels::hamming_words_avx2(&a, &b),
                kernels::hamming_words_scalar(&a, &b)
            );
        }
    }

    #[test]
    fn masked_hamming_simd_matches_scalar(triple in arb_word_triple()) {
        let (a, b, m) = triple;
        if kernels::avx2_available() {
            prop_assert_eq!(
                kernels::masked_hamming_words_avx2(&a, &b, &m),
                kernels::masked_hamming_words_scalar(&a, &b, &m)
            );
        }
    }

    #[test]
    fn degenerate_masks_simd_matches_scalar(pair in arb_word_pair()) {
        let (a, b) = pair;
        if kernels::avx2_available() {
            let zeros = vec![0u64; a.len()];
            let ones = vec![u64::MAX; a.len()];
            prop_assert_eq!(kernels::masked_hamming_words_avx2(&a, &b, &zeros), 0);
            prop_assert_eq!(
                kernels::masked_hamming_words_avx2(&a, &b, &ones),
                kernels::hamming_words_scalar(&a, &b)
            );
        }
    }
}

proptest! {
    // Tier-independent: whatever tier this process dispatches to (set
    // LEHDC_KERNEL to pin it — check.sh runs the suite under both), the
    // public entry points must equal the scalar reference.
    #[test]
    fn dispatched_kernels_match_scalar(triple in arb_word_triple()) {
        let (a, b, m) = triple;
        prop_assert_eq!(
            kernels::popcount_words(&a),
            kernels::popcount_words_scalar(&a)
        );
        prop_assert_eq!(
            kernels::hamming_words(&a, &b),
            kernels::hamming_words_scalar(&a, &b)
        );
        prop_assert_eq!(
            kernels::masked_hamming_words(&a, &b, &m),
            kernels::masked_hamming_words_scalar(&a, &b, &m)
        );
    }

    // The fused XNOR-dot and its masked variant are derived from hamming;
    // pin the arithmetic identity against a per-bit reference.
    #[test]
    fn dot_words_matches_per_bit_reference(d in 1usize..=300, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = hv(d, s1);
        let b = hv(d, s2);
        let expect: i64 = (0..d).map(|i| i64::from(a.bipolar(i) * b.bipolar(i))).sum();
        prop_assert_eq!(kernels::dot_words(d, a.as_words(), b.as_words()), expect);
    }

    #[test]
    fn blocked_argmax_matches_per_query(
        d in 1usize..=200,
        n_rows in 1usize..=9,
        n_queries in 0usize..=40,
        block in 1usize..=48,
        seed in any::<u64>()
    ) {
        let dim = Dim::new(d);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        // small D and few rows make ties common — exactly what the
        // determinism claim is about
        let rows: Vec<BinaryHv> = (0..n_rows).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let queries: Vec<BinaryHv> = (0..n_queries).map(|_| BinaryHv::random(dim, &mut rng)).collect();
        let row_words: Vec<&[u64]> = rows.iter().map(BinaryHv::as_words).collect();
        let query_words: Vec<&[u64]> = queries.iter().map(BinaryHv::as_words).collect();
        let expect: Vec<usize> = queries
            .iter()
            .map(|q| kernels::argmax_dot(q.as_words(), row_words.iter().copied()).unwrap())
            .collect();
        let mut got = vec![usize::MAX; queries.len()];
        kernels::argmax_dot_blocked_into(&query_words, &row_words, block, &mut got);
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------------
// Explicit regression cases: the boundary widths from the issue, plus edge
// cases the generators reach only rarely.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[test]
fn boundary_widths_simd_matches_scalar() {
    if !kernels::avx2_available() {
        eprintln!("skipping: no AVX2 on this host");
        return;
    }
    for &d in BOUNDARY_DIMS {
        let a = hv(d, 2 * d as u64);
        let b = hv(d, 2 * d as u64 + 1);
        let mask = BinaryHv::from_fn(Dim::new(d), |i| i % 3 != 0);
        assert_eq!(
            kernels::popcount_words_avx2(a.as_words()),
            kernels::popcount_words_scalar(a.as_words()),
            "popcount d={d}"
        );
        assert_eq!(
            kernels::hamming_words_avx2(a.as_words(), b.as_words()),
            kernels::hamming_words_scalar(a.as_words(), b.as_words()),
            "hamming d={d}"
        );
        assert_eq!(
            kernels::masked_hamming_words_avx2(a.as_words(), b.as_words(), mask.as_words()),
            kernels::masked_hamming_words_scalar(a.as_words(), b.as_words(), mask.as_words()),
            "masked d={d}"
        );
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn random_tail_words_simd_matches_scalar() {
    // Raw word slices whose last word is fully random (no zero tail bits):
    // the kernels must count whatever is there, identically.
    if !kernels::avx2_available() {
        eprintln!("skipping: no AVX2 on this host");
        return;
    }
    let mut rng = Xoshiro256pp::seed_from_u64(0xBEEF);
    for n in [1usize, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 65, 157] {
        let a: Vec<u64> = (0..n).map(|_| rng.random::<u64>()).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.random::<u64>()).collect();
        let m: Vec<u64> = (0..n).map(|_| rng.random::<u64>()).collect();
        assert_eq!(
            kernels::popcount_words_avx2(&a),
            kernels::popcount_words_scalar(&a),
            "popcount n={n}"
        );
        assert_eq!(
            kernels::hamming_words_avx2(&a, &b),
            kernels::hamming_words_scalar(&a, &b),
            "hamming n={n}"
        );
        assert_eq!(
            kernels::masked_hamming_words_avx2(&a, &b, &m),
            kernels::masked_hamming_words_scalar(&a, &b, &m),
            "masked n={n}"
        );
    }
}

#[test]
fn empty_slices_count_zero_on_every_tier() {
    assert_eq!(kernels::popcount_words(&[]), 0);
    assert_eq!(kernels::popcount_words_scalar(&[]), 0);
    assert_eq!(kernels::hamming_words(&[], &[]), 0);
    assert_eq!(kernels::masked_hamming_words(&[], &[], &[]), 0);
    #[cfg(target_arch = "x86_64")]
    if kernels::avx2_available() {
        assert_eq!(kernels::popcount_words_avx2(&[]), 0);
        assert_eq!(kernels::hamming_words_avx2(&[], &[]), 0);
        assert_eq!(kernels::masked_hamming_words_avx2(&[], &[], &[]), 0);
    }
}

#[test]
fn kept_zero_mask_yields_zero_dot() {
    let d = 257;
    let a = hv(d, 1);
    let b = hv(d, 2);
    let zeros = BinaryHv::zeros(Dim::new(d));
    assert_eq!(
        kernels::masked_dot_words(0, a.as_words(), b.as_words(), zeros.as_words()),
        0
    );
    assert_eq!(
        kernels::masked_hamming_words(a.as_words(), b.as_words(), zeros.as_words()),
        0
    );
}

#[test]
fn saturated_popcounts_stay_exact_integers_below_2_pow_24() {
    // Worst case near the paper's D: a vector against its negation has
    // hamming = D and dot = −D. The logit magnitude D = 10,000 < 2²⁴, so the
    // f32 the packed products hand out is exactly the integer — the property
    // the whole bit-identical claim rests on.
    let d = 10_000;
    let a = hv(d, 77);
    let neg = a.negated();
    let h = kernels::hamming_words(a.as_words(), neg.as_words());
    assert_eq!(h, d, "negation disagrees everywhere");
    let dot = kernels::dot_words(d, a.as_words(), neg.as_words());
    assert_eq!(dot, -(d as i64));
    assert_eq!((dot as f32) as i64, dot, "logit is exact in f32");
    let all = kernels::popcount_words(
        BinaryHv::ones(Dim::new(d)).as_words(),
    );
    assert_eq!(all, d);
    assert!((d as i64) < (1 << 24));
}

#[test]
fn active_tier_honors_env_override() {
    // This process may have been launched with LEHDC_KERNEL set (check.sh
    // runs the suite under both values); whatever was requested must be
    // what dispatch resolved to.
    let tier = kernels::active_tier();
    match std::env::var(kernels::KERNEL_ENV).ok().as_deref() {
        Some("scalar") => assert_eq!(tier, kernels::KernelTier::Scalar),
        Some("avx2") => {
            if kernels::avx2_available() {
                assert_eq!(tier, kernels::KernelTier::Avx2);
            } else {
                assert_eq!(tier, kernels::KernelTier::Scalar, "graceful fallback");
            }
        }
        _ => assert_eq!(
            tier == kernels::KernelTier::Avx2,
            kernels::avx2_available(),
            "auto-detection follows the hardware"
        ),
    }
}
