//! Golden-vector tests pinning the exact output streams of both generators.
//!
//! Every seeded experiment in the workspace flows through these two
//! generators; a silent change to either would invisibly alter every result
//! while all behavioral tests keep passing. These vectors make such drift a
//! hard failure instead.
//!
//! The seed-0 SplitMix64 sequence matches the published reference vector of
//! the Java/C implementation (`0xE220A8397B1DCDAF …`), so the pinned values
//! anchor the canonical algorithms, not just this crate's own history.

use testkit::{derive_seed, splitmix64, Rng, SplitMix64, Xoshiro256pp};

fn first8(mut rng: impl Rng) -> [u64; 8] {
    let mut out = [0u64; 8];
    rng.fill_u64(&mut out);
    out
}

#[test]
fn splitmix64_golden_seed_0() {
    // Reference vector of the canonical SplitMix64 (seed 0).
    assert_eq!(
        first8(SplitMix64::seed_from_u64(0)),
        [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
            0x53CB_9F0C_747E_A2EA,
            0x2C82_9ABE_1F45_32E1,
            0xC584_133A_C916_AB3C,
        ]
    );
}

#[test]
fn splitmix64_golden_seed_42() {
    assert_eq!(
        first8(SplitMix64::seed_from_u64(42)),
        [
            0xBDD7_3226_2FEB_6E95,
            0x28EF_E333_B266_F103,
            0x4752_6757_130F_9F52,
            0x581C_E1FF_0E4A_E394,
            0x09BC_585A_2448_23F2,
            0xDE44_31FA_3C80_DB06,
            0x37E9_671C_4537_6D5D,
            0xCCF6_35EE_9E9E_2FA4,
        ]
    );
}

#[test]
fn splitmix64_golden_high_seed() {
    assert_eq!(
        first8(SplitMix64::seed_from_u64(0xDEAD_BEEF_CAFE_F00D)),
        [
            0x901D_4F65_2FB4_72CB,
            0xA7CE_2464_40F7_4527,
            0x19B4_0BBB_B938_0D34,
            0xE7A8_6DC5_BE61_8392,
            0x7366_CE94_5D00_E82C,
            0x0FF6_905E_190D_8244,
            0xC13C_6626_ABD0_306B,
            0xF6C9_5B6E_D426_7A56,
        ]
    );
}

#[test]
fn xoshiro256pp_golden_seed_0() {
    assert_eq!(
        first8(Xoshiro256pp::seed_from_u64(0)),
        [
            0x5317_5D61_490B_23DF,
            0x61DA_6F3D_C380_D507,
            0x5C0F_DF91_EC9A_7BFC,
            0x02EE_BF8C_3BBE_5E1A,
            0x7ECA_04EB_AF4A_5EEA,
            0x0543_C377_57F0_8D9A,
            0xDB74_90C7_5AB5_026E,
            0xD873_43E6_464B_C959,
        ]
    );
}

#[test]
fn xoshiro256pp_golden_seed_42() {
    assert_eq!(
        first8(Xoshiro256pp::seed_from_u64(42)),
        [
            0xD076_4D4F_4476_689F,
            0x519E_4174_576F_3791,
            0xFBE0_7CFB_0C24_ED8C,
            0xB37D_9F60_0CD8_35B8,
            0xCB23_1C38_7484_6A73,
            0x968D_9F00_4E50_DE7D,
            0x2017_18FF_221A_3556,
            0x9AE9_4E07_0ED8_CB46,
        ]
    );
}

#[test]
fn xoshiro256pp_golden_high_seed() {
    assert_eq!(
        first8(Xoshiro256pp::seed_from_u64(0xDEAD_BEEF_CAFE_F00D)),
        [
            0x2594_5A60_5E70_55A9,
            0x3948_323E_F977_5D55,
            0xCB4E_90AD_7CF1_678A,
            0xEC5C_7DAE_F7B0_39EB,
            0xA709_4114_5C99_5825,
            0xDEF4_C8DB_AA75_56E9,
            0x87FF_2E95_D823_8DFD,
            0x29A7_8437_DBC8_60B1,
        ]
    );
}

#[test]
fn splitmix64_function_golden() {
    // The free function is one generator step from the given state.
    assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    assert_eq!(splitmix64(42), 0xBDD7_3226_2FEB_6E95);
}

#[test]
fn derive_seed_golden() {
    // derive_seed is the workspace-wide stream-splitting scheme; pin a few
    // values so experiment seeds stay stable across refactors too.
    assert_eq!(derive_seed(0, 0), 0x46B7_3E79_F0C3_7C00);
    assert_eq!(derive_seed(42, 0), 0x7C24_7ADE_FCC8_B7D8);
    assert_eq!(derive_seed(42, 1), 0x3869_92B4_AC1A_2DBC);
}
