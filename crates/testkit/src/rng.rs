//! Deterministic pseudo-random number generation.
//!
//! The workspace owns its entire randomness stack: every stochastic component
//! seeds one of the generators here from a `u64`, so results are bit-exact
//! reproducible on any platform and no registry crate is ever needed.
//!
//! Two generators are provided:
//!
//! - [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer-based generator.
//!   Trivially seedable from any `u64` (including 0), passes BigCrush, and is
//!   the canonical tool for seeding larger-state generators.
//! - [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ 1.0, the workspace
//!   default. 256 bits of state seeded via SplitMix64, period 2²⁵⁶ − 1.
//!
//! The [`Rng`] trait layers the distributions the codebase actually uses on
//! top of the raw `u64` stream: uniform integers and floats, ranges,
//! Bernoulli draws, and (via [`crate::dist`]) shuffles and Gaussians.
//!
//! # Examples
//!
//! ```
//! use testkit::{Rng, Xoshiro256pp};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let x: f32 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.random_range(0..10usize);
//! assert!(k < 10);
//! ```

/// The golden-ratio increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output mixing function (three xor-multiply rounds).
///
/// This is the bijective finalizer applied to the generator's counter state;
/// [`splitmix64`] composes it with the golden-gamma increment.
#[must_use]
pub const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One full SplitMix64 step from state `z`: increment then mix.
///
/// `splitmix64(s)` equals the first output of `SplitMix64::seed_from_u64(s)`.
#[must_use]
pub const fn splitmix64(z: u64) -> u64 {
    mix64(z.wrapping_add(GOLDEN_GAMMA))
}

/// Derives an independent child seed from a parent seed and a stream index.
///
/// The same `(seed, stream)` pair always yields the same child seed, and
/// distinct streams yield uncorrelated generators. This is the single seed
/// derivation scheme of the whole workspace (re-exported as
/// `hdc::rng::derive_seed`).
///
/// # Examples
///
/// ```
/// let a = testkit::derive_seed(42, 0);
/// let b = testkit::derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, testkit::derive_seed(42, 0));
/// ```
#[must_use]
pub const fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream.wrapping_add(GOLDEN_GAMMA)))
}

/// A deterministic source of uniform `u64`s plus derived distributions.
///
/// Implementors only provide [`Rng::next_u64`]; every other method is derived
/// from it, so all generators agree on how raw bits map to each distribution.
pub trait Rng {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// The next 32 bits (the high half of one 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniformly distributed value of type `T`.
    ///
    /// Integers cover their full domain; `f32`/`f64` are uniform in `[0, 1)`
    /// with 24/53 bits of precision; `bool` is a fair coin.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(-0.1..0.1)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::from_rng(self) < p
    }

    /// Fills a word buffer with raw output.
    fn fill_u64(&mut self, dest: &mut [u64]) {
        for w in dest {
            *w = self.next_u64();
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: it has the best equidistribution guarantees in
        // the xoshiro family.
        (rng.next_u64() >> 63) == 1
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform multiples of 2^-24 in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps a raw 64-bit draw onto `[0, span)` by 128-bit multiply-shift.
///
/// Bias is at most `span / 2⁶⁴` — negligible for every span this workspace
/// uses, and fully deterministic (no rejection loop).
#[inline]
fn mul_shift(x: u64, span: u64) -> u64 {
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                let off = mul_shift(rng.next_u64(), span);
                self.start.wrapping_add(off as $ut as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi.wrapping_sub(lo) as $ut as u64;
                if span == <$ut>::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                let off = mul_shift(rng.next_u64(), span + 1);
                lo.wrapping_add(off as $ut as $t)
            }
        }
    )*};
}
sample_range_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                  i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = FromRng::from_rng(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Steele, Lea & Flood's SplitMix64 generator.
///
/// A 64-bit counter advanced by the golden-ratio gamma, finalized by
/// [`mix64`]. Any seed (including 0) is valid; the output of state `s` is
/// exactly [`splitmix64`]`(s)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose first output is `splitmix64(seed)`.
    #[must_use]
    pub const fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current counter state.
    #[must_use]
    pub const fn state(&self) -> u64 {
        self.state
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

/// Blackman & Vigna's xoshiro256++ 1.0 generator — the workspace default.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes all known statistical test
/// batteries. Seeded from a `u64` by filling the state with SplitMix64
/// output, exactly as the reference implementation recommends.
///
/// # Examples
///
/// ```
/// use testkit::{Rng, Xoshiro256pp};
///
/// let mut a = Xoshiro256pp::seed_from_u64(7);
/// let mut b = Xoshiro256pp::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state from a `u64` via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        let mut s = [0u64; 4];
        sm.fill_u64(&mut s);
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the transition
            // function; it cannot occur from SplitMix64 output in practice,
            // but guard it so `from_state` round-trips stay total.
            s[0] = GOLDEN_GAMMA;
        }
        Xoshiro256pp { s }
    }

    /// A generator for the `(seed, stream)` pair of [`derive_seed`].
    #[must_use]
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(derive_seed(seed, stream))
    }

    /// Restores a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which the generator can never leave.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256++ state must be non-zero");
        Xoshiro256pp { s }
    }

    /// The raw state words.
    #[must_use]
    pub const fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_function_matches_generator() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let mut g = SplitMix64::seed_from_u64(seed);
            assert_eq!(g.next_u64(), splitmix64(seed));
        }
    }

    #[test]
    fn generators_are_reproducible() {
        let mut a = Xoshiro256pp::seed_from_u64(9);
        let mut b = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            Xoshiro256pp::seed_from_u64(1).next_u64(),
            Xoshiro256pp::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x), "f32 {x} out of [0,1)");
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y), "f64 {y} out of [0,1)");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..10_000 {
            let k = rng.random_range(3..17usize);
            assert!((3..17).contains(&k));
            let i = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
            let f = rng.random_range(-0.1..0.1f32);
            assert!((-0.1..0.1).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_endpoints() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..=3usize)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let _ = rng.random_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn random_bool_hits_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn fair_coin_is_roughly_fair() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let heads = (0..20_000).filter(|_| rng.random::<bool>()).count();
        let rate = heads as f64 / 20_000.0;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn derive_seed_is_deterministic_and_distinct() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        let seeds: Vec<u64> = (0..1000).map(|s| derive_seed(7, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn state_roundtrip() {
        let mut a = Xoshiro256pp::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = Xoshiro256pp::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> (u64, bool, f32, usize) {
            (
                rng.random(),
                rng.random(),
                rng.random(),
                rng.random_range(0..9usize),
            )
        }
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let a = draw(&mut rng);
        let mut rng2 = Xoshiro256pp::seed_from_u64(12);
        assert_eq!(a, draw(&mut rng2));
    }
}
