//! Derived distributions: Fisher–Yates shuffling and Box–Muller Gaussians.

use crate::rng::Rng;

/// Random operations on slices (Fisher–Yates shuffle, uniform choice).
///
/// # Examples
///
/// ```
/// use testkit::{SliceRandom, Xoshiro256pp};
///
/// let mut v: Vec<usize> = (0..10).collect();
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// v.shuffle(&mut rng);
/// let mut sorted = v.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..10).collect::<Vec<_>>());
/// ```
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place with the Fisher–Yates algorithm.
    ///
    /// Every permutation is equally likely (up to the generator's uniformity)
    /// and the result is a pure function of the slice and the rng state.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// A Box–Muller Gaussian sampler with the given mean and standard deviation.
///
/// Each Box–Muller transform produces two independent normals; the spare is
/// cached, so consecutive draws cost one transform per pair. The sampler is
/// therefore stateful — clone it to fork a stream.
///
/// # Examples
///
/// ```
/// use testkit::{Normal, Xoshiro256pp};
///
/// let mut rng = Xoshiro256pp::seed_from_u64(2);
/// let mut normal = Normal::new(10.0, 2.0);
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Normal {
    mean: f64,
    sd: f64,
    spare: Option<f64>,
}

impl Normal {
    /// A Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            mean.is_finite() && sd.is_finite() && sd >= 0.0,
            "invalid normal parameters: mean {mean}, sd {sd}"
        );
        Normal {
            mean,
            sd,
            spare: None,
        }
    }

    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let z = if let Some(z) = self.spare.take() {
            z
        } else {
            // u1 in (0, 1] keeps ln() finite.
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        };
        self.mean + self.sd * z
    }

    /// Draws one sample as `f32`.
    pub fn sample_f32<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        self.sample(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn shuffle_is_a_permutation_and_reproducible() {
        let mut a: Vec<usize> = (0..100).collect();
        let mut b = a.clone();
        a.shuffle(&mut Xoshiro256pp::seed_from_u64(5));
        b.shuffle(&mut Xoshiro256pp::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let mut c: Vec<usize> = (0..100).collect();
        c.shuffle(&mut Xoshiro256pp::seed_from_u64(6));
        assert_ne!(a, c, "different seeds shuffle differently");
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [42];
        one.shuffle(&mut rng);
        assert_eq!(one, [42]);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap()] = true;
        }
        assert_eq!(seen, [true; 4]);
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut normal = Normal::standard();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn normal_applies_mean_and_sd() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let mut normal = Normal::new(5.0, 0.5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / f64::from(n);
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "invalid normal parameters")]
    fn normal_rejects_negative_sd() {
        let _ = Normal::new(0.0, -1.0);
    }
}
