//! Hermetic testing toolkit for the LeHDC workspace.
//!
//! This crate replaces the three registry dependencies the workspace used to
//! pull in — `rand`, `proptest`, and `criterion` — with small in-tree
//! equivalents, so a clean checkout builds and tests **fully offline** with
//! an empty cargo registry cache. Reproducibility work on HDC classifiers
//! hinges on bit-exact seeded randomness; owning the generator stack makes
//! every experiment replayable from a single `u64` seed, forever, on any
//! platform.
//!
//! Three subsystems:
//!
//! - [`rng`]: the [`Rng`] trait with [`SplitMix64`] and [`Xoshiro256pp`]
//!   generators, uniform int/float/bool draws, ranges, and Bernoulli trials;
//!   [`dist`] adds Fisher–Yates [`SliceRandom`] and Box–Muller [`Normal`].
//!   Seeds derive through [`derive_seed`], the workspace-wide scheme.
//! - [`prop`]: a `proptest`-style property-testing harness — the
//!   [`proptest!`] macro, generator combinators ([`prop::Strategy`],
//!   ranges, [`prop::any`], [`prop::collection::vec`], tuples,
//!   [`prop_oneof!`]), configurable case counts, failure-seed reporting,
//!   and linear shrinking.
//! - [`bench`]: a benchmark harness — warmup, calibrated iterations, and
//!   median/σ reporting — driven by the [`bench_main!`] macro.
//!
//! Golden-vector tests under `tests/` pin the exact output streams of both
//! generators so refactors cannot silently change every seeded experiment.

pub mod bench;
pub mod dist;
pub mod prop;
pub mod rng;

pub use dist::{Normal, SliceRandom};
pub use rng::{
    derive_seed, mix64, splitmix64, FromRng, Rng, SampleRange, SplitMix64, Xoshiro256pp,
    GOLDEN_GAMMA,
};

/// Everything property tests need: `use testkit::prelude::*;`.
pub mod prelude {
    pub use crate::prop::{self, any, collection, one_of, BoxedStrategy, Just, Strategy};
    pub use crate::rng::{Rng, SplitMix64, Xoshiro256pp};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, SliceRandom,
    };
}

/// Declares property tests: `#[test]` functions whose arguments are drawn
/// from strategies, run for many cases, and shrunk on failure.
///
/// ```
/// use testkit::prelude::*;
///
/// proptest! {
///     #[test]
///     fn reverse_is_involutive(v in collection::vec(0u32..100, 0..20usize)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         prop_assert_eq!(v, w);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[doc = $doc:literal])*
        #[test]
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            $crate::prop::run(
                stringify!($name),
                ($($strategy,)+),
                move |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Fails the enclosing property case (with shrinking) unless the condition
/// holds. Inside `proptest!` bodies only.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion for property bodies; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assertion for property bodies; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: `{:?}` == `{:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Picks uniformly between several strategies of the same value type.
///
/// ```
/// use testkit::prelude::*;
///
/// let dims = prop_oneof![1usize..=8, 60usize..=70, 120usize..=260];
/// # let _ = dims;
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop::one_of(vec![
            $($crate::prop::Strategy::boxed($strategy)),+
        ])
    };
}
