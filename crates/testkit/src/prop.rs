//! A minimal property-testing harness with generator combinators and linear
//! shrinking.
//!
//! The design follows Hedgehog rather than classic QuickCheck: a
//! [`Strategy`] produces a lazy [`Tree`] whose root is the generated value
//! and whose children are progressively simpler candidate values. On
//! failure the runner walks the tree greedily — repeatedly moving to the
//! first child that still fails — which yields linear-time shrinking and
//! composes through `prop_map`/`prop_flat_map` without any per-type
//! shrinking code in user tests.
//!
//! Every case is seeded deterministically from the property name and the
//! case index, so a failure report's seed replays exactly, on any machine:
//!
//! ```text
//! TESTKIT_SEED=<seed> cargo test <property_name>
//! ```
//!
//! Environment knobs:
//!
//! - `TESTKIT_CASES`: cases per property (default 256).
//! - `TESTKIT_SEED`: replay a single reported case instead of the full run.
//!
//! # Examples
//!
//! ```
//! use testkit::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use crate::rng::{derive_seed, Rng, Xoshiro256pp};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ---------------------------------------------------------------- shrink tree

/// A generated value plus a lazy list of simpler candidate values.
pub struct Tree<T> {
    value: T,
    shrinks: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T: Clone> Clone for Tree<T> {
    fn clone(&self) -> Self {
        Tree {
            value: self.value.clone(),
            shrinks: Rc::clone(&self.shrinks),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A tree with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            shrinks: Rc::new(Vec::new),
        }
    }

    /// A tree with lazily computed shrink candidates (simplest first).
    pub fn with_shrinks(value: T, shrinks: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            shrinks: Rc::new(shrinks),
        }
    }

    /// The generated value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// The one-step shrink candidates.
    pub fn shrinks(&self) -> Vec<Tree<T>> {
        (self.shrinks)()
    }

    fn map<O: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> O>) -> Tree<O> {
        let value = f(&self.value);
        let inner = self.clone();
        Tree::with_shrinks(value, move || {
            inner.shrinks().iter().map(|t| t.map(Rc::clone(&f))).collect()
        })
    }
}

// ------------------------------------------------------------------ strategy

/// A recipe for generating shrinkable values of one type.
pub trait Strategy: Clone + 'static {
    /// The type of value generated.
    type Value: Clone + Debug + 'static;

    /// Generates one value with its shrink tree.
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<Self::Value>;

    /// Transforms generated values; shrinking happens on the inputs and is
    /// re-mapped, so mapped strategies shrink for free.
    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        O: Clone + Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(move |v: &Self::Value| f(v.clone())),
        }
    }

    /// Builds a dependent strategy from each generated value. Shrinking
    /// first simplifies the outer value (regenerating the inner one from a
    /// pinned seed), then the inner value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, S2>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Type-erases the strategy (needed by [`one_of`] / `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    inner: S,
    f: Rc<dyn Fn(&S::Value) -> O>,
}

impl<S: Strategy, O> Clone for Map<S, O> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, O: Clone + Debug + 'static> Strategy for Map<S, O> {
    type Value = O;

    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<O> {
        self.inner.new_tree(rng).map(Rc::clone(&self.f))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S: Strategy, S2> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> S2>,
}

impl<S: Strategy, S2> Clone for FlatMap<S, S2> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, S2: Strategy> Strategy for FlatMap<S, S2> {
    type Value = S2::Value;

    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<S2::Value> {
        let outer = self.inner.new_tree(rng);
        // Pin the inner generation seed so shrinking the outer value replays
        // the "same" inner randomness instead of resampling fresh noise.
        let seed = rng.next_u64();
        flat_tree(&outer, Rc::clone(&self.f), seed)
    }
}

fn flat_tree<T, S2>(outer: &Tree<T>, f: Rc<dyn Fn(T) -> S2>, seed: u64) -> Tree<S2::Value>
where
    T: Clone + 'static,
    S2: Strategy,
{
    let strat = f(outer.value().clone());
    let inner = strat.new_tree(&mut Xoshiro256pp::seed_from_u64(seed));
    let outer = outer.clone();
    let inner2 = inner.clone();
    Tree::with_shrinks(inner.value().clone(), move || {
        let mut candidates: Vec<Tree<S2::Value>> = outer
            .shrinks()
            .iter()
            .map(|o| flat_tree(o, Rc::clone(&f), seed))
            .collect();
        candidates.extend(inner2.shrinks());
        candidates
    })
}

trait DynStrategy<T> {
    fn dyn_new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<S::Value> {
        self.new_tree(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<T> {
        self.0.dyn_new_tree(rng)
    }
}

/// Picks one of several same-typed strategies uniformly per case.
/// Shrinking stays within the chosen alternative.
#[derive(Clone)]
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

/// See [`OneOf`]; usually written via the `prop_oneof!` macro.
///
/// # Panics
///
/// Panics if `choices` is empty.
pub fn one_of<T: Clone + Debug + 'static>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "one_of needs at least one strategy");
    OneOf { choices }
}

impl<T: Clone + Debug + 'static> Strategy for OneOf<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<T> {
        let idx = rng.random_range(0..self.choices.len());
        self.choices[idx].new_tree(rng)
    }
}

// ----------------------------------------------------------- value strategies

macro_rules! int_strategies {
    ($($t:ty => $ut:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<$t> {
                let v = rng.random_range(self.clone());
                int_tree(self.start, v)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<$t> {
                let v = rng.random_range(self.clone());
                int_tree(*self.start(), v)
            }
        }
        impl IntOffset for $t {
            type Unsigned = $ut;
            fn offset_from(self, low: Self) -> u64 {
                self.wrapping_sub(low) as $ut as u64
            }
            fn add_offset(low: Self, off: u64) -> Self {
                low.wrapping_add(off as $ut as $t)
            }
        }
    )*};
}

/// Modular offset arithmetic shared by all integer shrink trees.
trait IntOffset: Copy + PartialEq + Debug + 'static {
    type Unsigned;
    fn offset_from(self, low: Self) -> u64;
    fn add_offset(low: Self, off: u64) -> Self;
}

int_strategies!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Shrinks toward `low`: first `low` itself, then binary midpoints, ending
/// one step below the failing value — the classic linear halving ladder.
fn int_tree<T: IntOffset>(low: T, v: T) -> Tree<T> {
    Tree::with_shrinks(v, move || {
        let dist = v.offset_from(low);
        let mut offsets: Vec<u64> = Vec::new();
        let mut d = dist;
        while d > 0 {
            offsets.push(dist - d);
            d /= 2;
        }
        offsets.dedup();
        offsets
            .into_iter()
            .map(|off| int_tree(low, T::add_offset(low, off)))
            .collect()
    })
}

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<$t> {
                let v = rng.random_range(self.clone());
                float_tree(self.start, v, 16)
            }
        }
    )*};
}
float_strategies!(f32, f64);

trait FloatLadder: Copy + PartialOrd + Debug + 'static {
    fn ladder_toward(low: Self, v: Self) -> Vec<Self>;
}

macro_rules! float_ladder {
    ($($t:ty),*) => {$(
        impl FloatLadder for $t {
            /// The halving ladder toward `low`: `[low, midpoint, 3/4 point,
            /// …]`, 24 rungs — the float analogue of the integer shrink.
            fn ladder_toward(low: Self, v: Self) -> Vec<Self> {
                let mut candidates = vec![low];
                let mut d = (v - low) / 2.0;
                for _ in 0..24 {
                    let c = v - d;
                    if !(c > low && c < v) {
                        break;
                    }
                    candidates.push(c);
                    d /= 2.0;
                }
                candidates
            }
        }
    )*};
}
float_ladder!(f32, f64);

fn float_tree<T: FloatLadder>(low: T, v: T, depth: u32) -> Tree<T> {
    Tree::with_shrinks(v, move || {
        if depth == 0 || !(v > low) {
            return Vec::new();
        }
        T::ladder_toward(low, v)
            .into_iter()
            .map(|c| float_tree(low, c, depth - 1))
            .collect()
    })
}

/// Full-domain strategy for a primitive type; see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

/// Generates any value of `T` (full domain), shrinking toward zero/`false`.
#[must_use]
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy,
{
    AnyStrategy(PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<$t> {
                let v: $t = rng.random();
                int_tree(0, v)
            }
        }
    )*};
}
any_uint!(u8, u16, u32, u64, usize);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<$t> {
                let v: $t = rng.random();
                signed_tree(v)
            }
        }
    )*};
}
any_int!(i8, i16, i32, i64, isize);

/// Shrinks a signed value toward zero from either side.
fn signed_tree<T>(v: T) -> Tree<T>
where
    T: Copy + PartialEq + Debug + 'static + std::ops::Div<Output = T> + std::ops::Sub<Output = T> + From<i8>,
{
    Tree::with_shrinks(v, move || {
        let zero = T::from(0i8);
        let two = T::from(2i8);
        if v == zero {
            return Vec::new();
        }
        let mut candidates = Vec::new();
        let mut d = v;
        loop {
            let c = v - d;
            if candidates.last() != Some(&c) {
                candidates.push(c);
            }
            if d == zero {
                break;
            }
            d = d / two;
            if candidates.len() > 64 {
                break;
            }
        }
        candidates.retain(|c| *c != v);
        candidates.into_iter().map(signed_tree).collect()
    })
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<bool> {
        let v: bool = rng.random();
        Tree::with_shrinks(v, move || if v { vec![Tree::leaf(false)] } else { Vec::new() })
    }
}

// --------------------------------------------------------------- collections

/// Strategies over collections.
pub mod collection {
    use super::*;

    /// A fixed or bounded length for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `elem`. Shrinking drops elements (toward the minimum length)
    /// before simplifying individual elements.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<Vec<S::Value>> {
            let len = rng.random_range(self.size.min..=self.size.max);
            let elems: Vec<Tree<S::Value>> = (0..len).map(|_| self.elem.new_tree(rng)).collect();
            vec_tree(elems, self.size.min)
        }
    }

    /// Generates `char`s: mostly printable ASCII, with a tail of arbitrary
    /// non-control Unicode scalars. Shrinks toward `'a'`.
    #[derive(Clone, Copy)]
    pub struct CharStrategy;

    /// See [`CharStrategy`].
    #[must_use]
    pub fn char_any() -> CharStrategy {
        CharStrategy
    }

    impl Strategy for CharStrategy {
        type Value = char;

        fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<char> {
            let c = if rng.random_bool(0.8) {
                char::from(rng.random_range(0x20u8..0x7F))
            } else {
                // Rejection-sample a non-control, non-surrogate scalar.
                loop {
                    let code = rng.random_range(0xA0u32..0x11_0000);
                    if let Some(c) = char::from_u32(code) {
                        break c;
                    }
                }
            };
            char_tree(c)
        }
    }

    fn char_tree(c: char) -> Tree<char> {
        Tree::with_shrinks(c, move || {
            ['a', ' ', '0']
                .into_iter()
                .filter(|&s| s < c)
                .map(char_tree)
                .collect()
        })
    }

    /// Generates `String`s of [`char_any`] characters whose char count lies
    /// in `size`. The replacement for fuzz-style `proptest` regex strategies
    /// such as `"\\PC{0,300}"`.
    pub fn string(size: impl Into<SizeRange>) -> impl Strategy<Value = String> {
        vec(char_any(), size).prop_map(|chars| chars.into_iter().collect())
    }

    fn vec_tree<T: Clone + Debug + 'static>(elems: Vec<Tree<T>>, min: usize) -> Tree<Vec<T>> {
        let value: Vec<T> = elems.iter().map(|t| t.value().clone()).collect();
        Tree::with_shrinks(value, move || {
            let n = elems.len();
            let mut out = Vec::new();
            if n > min {
                let half = (n / 2).max(min);
                if half < n {
                    out.push(vec_tree(elems[..half].to_vec(), min));
                }
                if n - 1 != half {
                    out.push(vec_tree(elems[..n - 1].to_vec(), min));
                }
            }
            for i in 0..n {
                for shrunk in elems[i].shrinks() {
                    let mut next = elems.clone();
                    next[i] = shrunk;
                    out.push(vec_tree(next, min));
                }
            }
            out
        })
    }
}

// -------------------------------------------------------------------- tuples

fn pair_tree<A, B>(a: &Tree<A>, b: &Tree<B>) -> Tree<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let (a, b) = (a.clone(), b.clone());
    Tree::with_shrinks((a.value().clone(), b.value().clone()), move || {
        let mut out: Vec<Tree<(A, B)>> =
            a.shrinks().iter().map(|a2| pair_tree(a2, &b)).collect();
        out.extend(b.shrinks().iter().map(|b2| pair_tree(&a, b2)));
        out
    })
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<(A::Value,)> {
        self.0
            .new_tree(rng)
            .map(Rc::new(|v: &A::Value| (v.clone(),)))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<Self::Value> {
        let ta = self.0.new_tree(rng);
        let tb = self.1.new_tree(rng);
        pair_tree(&ta, &tb)
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<Self::Value> {
        let ta = self.0.new_tree(rng);
        let tb = self.1.new_tree(rng);
        let tc = self.2.new_tree(rng);
        pair_tree(&pair_tree(&ta, &tb), &tc)
            .map(Rc::new(|((a, b), c)| (a.clone(), b.clone(), c.clone())))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<Self::Value> {
        let ta = self.0.new_tree(rng);
        let tb = self.1.new_tree(rng);
        let tc = self.2.new_tree(rng);
        let td = self.3.new_tree(rng);
        pair_tree(&pair_tree(&ta, &tb), &pair_tree(&tc, &td)).map(Rc::new(
            |((a, b), (c, d)): &((A::Value, B::Value), (C::Value, D::Value))| {
                (a.clone(), b.clone(), c.clone(), d.clone())
            },
        ))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy
    for (A, B, C, D, E)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<Self::Value> {
        let ta = self.0.new_tree(rng);
        let tb = self.1.new_tree(rng);
        let tc = self.2.new_tree(rng);
        let td = self.3.new_tree(rng);
        let te = self.4.new_tree(rng);
        pair_tree(&pair_tree(&pair_tree(&ta, &tb), &pair_tree(&tc, &td)), &te).map(Rc::new(
            #[allow(clippy::type_complexity)]
            |(((a, b), (c, d)), e): &(
                ((A::Value, B::Value), (C::Value, D::Value)),
                E::Value,
            )| { (a.clone(), b.clone(), c.clone(), d.clone(), e.clone()) },
        ))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
    for (A, B, C, D, E, F)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn new_tree(&self, rng: &mut Xoshiro256pp) -> Tree<Self::Value> {
        let ta = self.0.new_tree(rng);
        let tb = self.1.new_tree(rng);
        let tc = self.2.new_tree(rng);
        let td = self.3.new_tree(rng);
        let te = self.4.new_tree(rng);
        let tf = self.5.new_tree(rng);
        pair_tree(
            &pair_tree(&pair_tree(&ta, &tb), &pair_tree(&tc, &td)),
            &pair_tree(&te, &tf),
        )
        .map(Rc::new(
            #[allow(clippy::type_complexity)]
            |(((a, b), (c, d)), (e, f)): &(
                ((A::Value, B::Value), (C::Value, D::Value)),
                (E::Value, F::Value),
            )| {
                (
                    a.clone(),
                    b.clone(),
                    c.clone(),
                    d.clone(),
                    e.clone(),
                    f.clone(),
                )
            },
        ))
    }
}

/// Always generates the same value (no shrinking).
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn new_tree(&self, _rng: &mut Xoshiro256pp) -> Tree<T> {
        Tree::leaf(self.0.clone())
    }
}

// -------------------------------------------------------------------- runner

/// Runner configuration; see the module docs for the environment overrides.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Cap on total shrink attempts after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

impl Config {
    /// The default config with `TESTKIT_CASES` applied.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(cases) = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            cfg.cases = cases.max(1);
        }
        cfg
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn failure_of<V, F>(test: &F, value: &V) -> Option<String>
where
    V: Clone,
    F: Fn(V) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| test(value.clone()))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test panicked".to_string()),
        ),
    }
}

/// Runs a property under [`Config::from_env`]; used by the `proptest!` macro.
///
/// # Panics
///
/// Panics with the shrunk counterexample, its error, and the replay seed if
/// any case fails.
pub fn run<S, F>(name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    run_with(name, &Config::from_env(), strategy, test);
}

/// Runs a property under an explicit configuration.
///
/// # Panics
///
/// Panics with the shrunk counterexample, its error, and the replay seed if
/// any case fails.
pub fn run_with<S, F>(name: &str, config: &Config, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    let forced: Option<u64> = std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    let base = fnv1a(name.as_bytes());
    let cases = if forced.is_some() { 1 } else { config.cases };
    for case in 0..cases {
        let case_seed = forced.unwrap_or_else(|| derive_seed(base, u64::from(case)));
        let mut rng = Xoshiro256pp::seed_from_u64(case_seed);
        let tree = strategy.new_tree(&mut rng);
        let Some(first_error) = failure_of(&test, tree.value()) else {
            continue;
        };
        // Greedy linear shrink: move to the first simpler candidate that
        // still fails, until none does (or the attempt budget runs out).
        let original = format!("{:?}", tree.value());
        let mut current = tree;
        let mut error = first_error;
        let mut attempts = 0u32;
        let mut steps = 0u32;
        'shrinking: loop {
            for candidate in current.shrinks() {
                if attempts >= config.max_shrink_iters {
                    break 'shrinking;
                }
                attempts += 1;
                if let Some(e) = failure_of(&test, candidate.value()) {
                    current = candidate;
                    error = e;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }
        panic!(
            "property `{name}` failed at case {case}/{cases} (seed {case_seed})\n\
             minimal input: {:?}\n\
             error: {error}\n\
             originally: {original}\n\
             shrunk {steps} steps in {attempts} attempts\n\
             replay this case with: TESTKIT_SEED={case_seed} cargo test {name}",
            current.value(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shrink_to_minimum<S: Strategy>(
        strategy: S,
        seed: u64,
        fails: impl Fn(&S::Value) -> bool,
    ) -> S::Value {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut tree = strategy.new_tree(&mut rng);
        // Find a failing root first.
        let mut tries = 0;
        while !fails(tree.value()) {
            tree = strategy.new_tree(&mut rng);
            tries += 1;
            assert!(tries < 10_000, "no failing case found");
        }
        'outer: loop {
            for candidate in tree.shrinks() {
                if fails(candidate.value()) {
                    tree = candidate;
                    continue 'outer;
                }
            }
            break;
        }
        tree.value().clone()
    }

    #[test]
    fn int_shrinks_to_smallest_failure() {
        // property "v < 500" fails for v >= 500; minimal counterexample 500.
        let min = shrink_to_minimum(0u64..100_000, 1, |v| *v >= 500);
        assert_eq!(min, 500);
    }

    #[test]
    fn int_shrinks_respect_range_start() {
        let min = shrink_to_minimum(10usize..1000, 2, |_| true);
        assert_eq!(min, 10);
    }

    #[test]
    fn map_shrinks_through_transform() {
        let strategy = (0u64..10_000).prop_map(|v| v * 2);
        let min = shrink_to_minimum(strategy, 3, |v| *v >= 100);
        assert_eq!(min, 100);
    }

    #[test]
    fn vec_shrinks_length_and_elements() {
        let strategy = collection::vec(0u32..1000, 0..20usize);
        let min = shrink_to_minimum(strategy, 4, |v| v.iter().any(|&x| x >= 10));
        assert_eq!(min, vec![10]);
    }

    #[test]
    fn tuple_shrinks_both_components() {
        let min = shrink_to_minimum((0u64..1000, 0u64..1000), 5, |(a, b)| a + b >= 20);
        assert_eq!(min.0 + min.1, 20, "minimal sum: {min:?}");
    }

    #[test]
    fn flat_map_shrinks_outer_then_inner() {
        // Dependent generation: length first, then a vec of that length.
        let strategy =
            (1usize..=16).prop_flat_map(|n| collection::vec(0u32..100, n));
        let min = shrink_to_minimum(strategy, 6, |v| !v.is_empty());
        assert_eq!(min.len(), 1, "minimal failing vec: {min:?}");
    }

    #[test]
    fn one_of_generates_from_all_arms() {
        let strategy = one_of(vec![(0usize..=0).boxed(), (100usize..=100).boxed()]);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*strategy.new_tree(&mut rng).value());
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn bool_shrinks_to_false() {
        let min = shrink_to_minimum(any::<bool>(), 8, |_| true);
        assert!(!min);
    }

    #[test]
    fn float_range_shrinks_toward_start() {
        let min = shrink_to_minimum(0.0f32..100.0, 9, |v| *v >= 1.0);
        assert!((1.0..1.5).contains(&min), "shrunk to {min}");
    }

    #[test]
    fn runner_passes_valid_property() {
        run_with(
            "tautology",
            &Config {
                cases: 64,
                ..Config::default()
            },
            0u64..100,
            |v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err("impossible".into())
                }
            },
        );
    }

    #[test]
    fn runner_reports_shrunk_counterexample() {
        let outcome = catch_unwind(|| {
            run_with(
                "finds_bug",
                &Config::default(),
                0u64..100_000,
                |v| if v < 777 { Ok(()) } else { Err(format!("{v} too big")) },
            );
        });
        let message = match outcome {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(
            message.contains("minimal input: 777"),
            "message should name the shrunk counterexample:\n{message}"
        );
        assert!(message.contains("TESTKIT_SEED="), "message: {message}");
    }

    #[test]
    fn runner_catches_panics_and_shrinks() {
        let outcome = catch_unwind(|| {
            run_with(
                "panics",
                &Config::default(),
                0u64..100_000,
                |v| {
                    assert!(v < 1234, "boom at {v}");
                    Ok(())
                },
            );
        });
        let message = match outcome {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(message.contains("minimal input: 1234"), "message:\n{message}");
        assert!(message.contains("boom at 1234"), "message:\n{message}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut values = Vec::new();
            run_with(
                "collector",
                &Config {
                    cases: 32,
                    ..Config::default()
                },
                0u64..1_000_000,
                |v| {
                    // Runner treats Ok as pass; smuggle values out via closure
                    // state to compare two identical runs.
                    values_push(&v);
                    Ok(())
                },
            );
            values.extend(values_take());
            values
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);

        thread_local! {
            static STASH: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        fn values_push(v: &u64) {
            STASH.with(|s| s.borrow_mut().push(*v));
        }
        fn values_take() -> Vec<u64> {
            STASH.with(|s| s.borrow_mut().drain(..).collect())
        }
    }
}
