//! A lightweight benchmarking harness: warmup, calibrated timed iterations,
//! and median/σ reporting.
//!
//! Bench targets declare `harness = false` in `Cargo.toml` and use the
//! [`bench_main!`](crate::bench_main) macro to produce a `main`:
//!
//! ```ignore
//! use testkit::bench::{Bench, Throughput};
//!
//! fn bench_sum(c: &mut Bench) {
//!     let mut group = c.benchmark_group("sum");
//!     group.throughput(Throughput::Elements(1024));
//!     group.bench_function("1024", |b| b.iter(|| (0..1024u64).sum::<u64>()));
//!     group.finish();
//! }
//!
//! testkit::bench_main!(bench_sum);
//! ```
//!
//! Each benchmark runs a wall-clock warmup, calibrates how many iterations
//! fit one sample, then records `sample_size` samples and reports the median
//! time per iteration, the standard deviation across samples, and (when a
//! throughput is set) elements or bytes per second at the median.
//!
//! Command line / environment:
//!
//! - a bare argument filters benchmarks by substring (as `cargo bench foo`);
//! - `--quick`, `--test`, or `TESTKIT_BENCH_QUICK=1` run one iteration per
//!   benchmark — a smoke mode for CI and `cargo bench -- --test`.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group, shown as `group/id`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter: `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter, e.g. a dimension.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId(s.into())
    }
}

/// One benchmark's aggregated measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark name (`group/id`).
    pub name: String,
    /// Median time per iteration.
    pub median_ns: f64,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Standard deviation across samples.
    pub sigma_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Derived rate, if a throughput was configured.
    pub throughput: Option<Throughput>,
}

/// The top-level benchmark driver (the harness analogue of a criterion
/// `Criterion`). Created once per bench binary by [`bench_main!`](crate::bench_main).
#[derive(Debug)]
pub struct Bench {
    filter: Option<String>,
    quick: bool,
    results: Vec<Summary>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            filter: None,
            quick: std::env::var("TESTKIT_BENCH_QUICK").is_ok_and(|v| v != "0"),
            results: Vec::new(),
        }
    }
}

impl Bench {
    /// A driver configured from the process arguments (see module docs).
    #[must_use]
    pub fn from_args() -> Self {
        let mut bench = Bench::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                // `cargo bench -- --test` and libtest-style probe flags run
                // everything once, quickly.
                "--test" | "--quick" => bench.quick = true,
                a if a.starts_with("--") => {}
                a => bench.filter = Some(a.to_string()),
            }
        }
        bench
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            bench: self,
            name: name.into(),
            sample_size: 15,
            warmup: Duration::from_millis(200),
            measurement: Duration::from_millis(750),
            throughput: None,
        }
    }

    /// All summaries recorded so far.
    #[must_use]
    pub fn results(&self) -> &[Summary] {
        &self.results
    }

    /// Prints the closing line and, when the `TESTKIT_BENCH_JSON`
    /// environment variable names a directory, writes the summaries to
    /// `BENCH_<target>.json` in it (target = bench binary name with cargo's
    /// trailing build hash stripped). Called by
    /// [`bench_main!`](crate::bench_main).
    pub fn finish(&self) {
        println!("\n{} benchmarks run", self.results.len());
        let Ok(dir) = std::env::var("TESTKIT_BENCH_JSON") else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", bench_target_name()));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }

    /// The recorded summaries as a JSON document: `{"quick": bool,
    /// "benchmarks": [{"name", "median_ns", ...}]}`. Hand-rolled — the
    /// workspace is hermetic and carries no serde.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            let throughput = match s.throughput {
                Some(Throughput::Elements(n)) => format!(", \"elements\": {n}"),
                Some(Throughput::Bytes(n)) => format!(", \"bytes\": {n}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"mean_ns\": {}, \
                 \"sigma_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"samples\": {}, \"iters_per_sample\": {}{throughput}}}{}\n",
                json_escape(&s.name),
                s.median_ns,
                s.mean_ns,
                s.sigma_ns,
                s.min_ns,
                s.max_ns,
                s.samples,
                s.iters_per_sample,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn run_one(
        &mut self,
        name: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        warmup: Duration,
        measurement: Duration,
        f: impl FnOnce(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            quick: self.quick,
            sample_size: sample_size.max(2),
            warmup,
            measurement,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        assert!(
            !bencher.samples.is_empty(),
            "benchmark `{name}` never called Bencher::iter"
        );
        let summary = bencher.summarize(name, throughput);
        print_summary(&summary);
        self.results.push(summary);
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchGroup<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchGroup<'_> {
    /// Sets the number of timed samples (default 15, minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock warmup budget (default 200 ms).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Sets the total measurement budget split across samples (default 750 ms).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into().0);
        self.bench.run_one(
            full,
            self.throughput,
            self.sample_size,
            self.warmup,
            self.measurement,
            f,
        );
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for criterion-style call sites; dropping works too).
    pub fn finish(self) {}
}

/// Runs the measured closure; handed to the benchmark function.
#[derive(Debug)]
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures a closure: warmup, calibration, then timed samples.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// computation cannot be optimized away.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.quick {
            let start = Instant::now();
            black_box(f());
            self.samples = vec![start.elapsed().as_secs_f64() * 1e9; 2];
            self.iters_per_sample = 1;
            return;
        }
        // Warmup: run for the budgeted wall-clock time, measuring cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-12)).ceil() as u64).max(1);
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / iters as f64 * 1e9);
        }
    }

    fn summarize(mut self, name: String, throughput: Option<Throughput>) -> Summary {
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let n = self.samples.len();
        let median = if n % 2 == 1 {
            self.samples[n / 2]
        } else {
            (self.samples[n / 2 - 1] + self.samples[n / 2]) / 2.0
        };
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n as f64;
        Summary {
            name,
            median_ns: median,
            mean_ns: mean,
            sigma_ns: var.sqrt(),
            min_ns: self.samples[0],
            max_ns: self.samples[n - 1],
            samples: n,
            iters_per_sample: self.iters_per_sample,
            throughput,
        }
    }
}

/// A benchmark snapshot parsed back from the JSON that [`Bench::finish`]
/// writes: the `quick` flag and each benchmark's median, in file order.
///
/// This is the reading half of the snapshot round-trip used by regression
/// gating (`bench_compare`): record a baseline `BENCH_<target>.json`, rerun,
/// and diff medians.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Whether the snapshot was taken in quick (single-iteration) mode.
    /// Quick-mode medians are noise; comparisons should refuse them.
    pub quick: bool,
    /// `(name, median_ns)` per benchmark, in file order.
    pub medians: Vec<(String, f64)>,
}

impl Snapshot {
    /// Parses a snapshot document produced by [`Bench::to_json`].
    ///
    /// The parser is deliberately scoped to that writer's output shape (the
    /// workspace carries no JSON dependency): it scans for `"name"` /
    /// `"median_ns"` key pairs and decodes the string escapes
    /// [`Bench::to_json`] can emit.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry: a truncated name
    /// string, a missing `median_ns`, or an unparseable number.
    pub fn parse(json: &str) -> Result<Snapshot, String> {
        let quick = json.contains("\"quick\": true");
        let mut medians = Vec::new();
        let mut rest = json;
        while let Some(pos) = rest.find("\"name\": \"") {
            rest = &rest[pos + "\"name\": \"".len()..];
            let (name, after) = json_unescape_string(rest)
                .ok_or_else(|| format!("unterminated name string near `{}`", clip(rest)))?;
            rest = after;
            let key = "\"median_ns\": ";
            let mpos = rest
                .find(key)
                .ok_or_else(|| format!("benchmark `{name}` has no median_ns"))?;
            let tail = &rest[mpos + key.len()..];
            let end = tail
                .find([',', '}'])
                .ok_or_else(|| format!("unterminated median for `{name}`"))?;
            let median: f64 = tail[..end]
                .trim()
                .parse()
                .map_err(|e| format!("bad median for `{name}`: {e}"))?;
            medians.push((name, median));
        }
        Ok(Snapshot { quick, medians })
    }

    /// The median for a benchmark name, if recorded.
    #[must_use]
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.medians
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, m)| m)
    }
}

/// Decodes a JSON string body (opening quote already consumed) up to its
/// closing quote. Returns the decoded string and the remainder after the
/// quote, or `None` if the string never terminates.
fn json_unescape_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn clip(s: &str) -> &str {
    &s[..s.len().min(40)]
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The bench target's logical name: `argv[0]`'s file stem with cargo's
/// trailing `-<16 hex>` build hash stripped.
fn bench_target_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    strip_build_hash(stem)
}

fn strip_build_hash(stem: &str) -> String {
    if let Some((name, hash)) = stem.rsplit_once('-') {
        if !name.is_empty() && hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) {
            return name.to_string();
        }
    }
    stem.to_string()
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_rate(units: u64, ns: f64, suffix: &str) -> String {
    let per_sec = units as f64 * 1e9 / ns;
    if per_sec >= 1e9 {
        format!("{:.2} G{suffix}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{suffix}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{suffix}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {suffix}/s")
    }
}

fn print_summary(s: &Summary) {
    let rate = match s.throughput {
        Some(Throughput::Elements(n)) => format!("  {}", format_rate(n, s.median_ns, "elem")),
        Some(Throughput::Bytes(n)) => format!("  {}", format_rate(n, s.median_ns, "B")),
        None => String::new(),
    };
    println!(
        "{:<40} median {:>10}  (±{}, n={}×{}){rate}",
        s.name,
        format_time(s.median_ns),
        format_time(s.sigma_ns),
        s.samples,
        s.iters_per_sample,
    );
}

/// Generates `main` for a `harness = false` bench target from a list of
/// `fn(&mut Bench)` group functions.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::from_args();
            $($group(&mut bench);)+
            bench.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench() -> Bench {
        Bench {
            quick: true,
            filter: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn quick_mode_records_one_sampled_result() {
        let mut bench = quick_bench();
        let mut group = bench.benchmark_group("g");
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.finish();
        assert_eq!(bench.results().len(), 1);
        let s = &bench.results()[0];
        assert_eq!(s.name, "g/sum");
        assert_eq!(s.iters_per_sample, 1);
        assert!(s.median_ns >= 0.0);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut bench = quick_bench();
        bench.filter = Some("keep".into());
        let mut group = bench.benchmark_group("g");
        group.bench_function("keep_me", |b| b.iter(|| 1 + 1));
        group.bench_function("drop_me", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(bench.results().len(), 1);
        assert_eq!(bench.results()[0].name, "g/keep_me");
    }

    #[test]
    fn measured_mode_collects_requested_samples() {
        let mut bench = Bench {
            quick: false,
            filter: None,
            results: Vec::new(),
        };
        let mut group = bench.benchmark_group("g");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        group.bench_with_input(BenchmarkId::from_parameter(32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        let s = &bench.results()[0];
        assert_eq!(s.name, "g/32");
        assert_eq!(s.samples, 5);
        assert!(s.iters_per_sample >= 1);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("enc", 4096).0, "enc/4096");
        assert_eq!(BenchmarkId::from_parameter("d10k").0, "d10k");
        assert_eq!(BenchmarkId::from("plain").0, "plain");
    }

    #[test]
    fn build_hash_is_stripped_from_target_names() {
        assert_eq!(strip_build_hash("kernels-0123456789abcdef"), "kernels");
        assert_eq!(strip_build_hash("kernels"), "kernels");
        assert_eq!(strip_build_hash("multi-word-0123456789abcdef"), "multi-word");
        // not a 16-hex suffix → untouched
        assert_eq!(strip_build_hash("kernels-quick"), "kernels-quick");
        assert_eq!(strip_build_hash("kernels-0123456789abcdeg"), "kernels-0123456789abcdeg");
    }

    #[test]
    fn json_output_lists_every_summary() {
        let mut bench = quick_bench();
        let mut group = bench.benchmark_group("g");
        group.throughput(Throughput::Elements(64));
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_function("b\"q", |b| b.iter(|| 2 + 2));
        group.finish();
        let json = bench.to_json();
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"name\": \"g/a\""));
        assert!(json.contains("\"name\": \"g/b\\\"q\""), "quotes escaped: {json}");
        assert!(json.contains("\"elements\": 64"));
        assert!(json.contains("\"median_ns\": "));
        // two entries, comma after the first only
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert_eq!(json.trim_end().chars().last(), Some('}'));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut bench = quick_bench();
        let mut group = bench.benchmark_group("g");
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_function("b\"q\\w", |b| b.iter(|| 2 + 2));
        group.finish();
        let snap = Snapshot::parse(&bench.to_json()).unwrap();
        assert!(snap.quick);
        assert_eq!(snap.medians.len(), 2);
        assert_eq!(snap.medians[0].0, "g/a");
        assert_eq!(snap.medians[1].0, "g/b\"q\\w");
        assert_eq!(snap.median_ns("g/a"), Some(snap.medians[0].1));
        assert_eq!(snap.median_ns("missing"), None);
    }

    #[test]
    fn snapshot_parses_reference_document() {
        let doc = r#"{
  "quick": false,
  "benchmarks": [
    {"name": "hamming/10000", "median_ns": 123.5, "mean_ns": 130, "sigma_ns": 2, "min_ns": 120, "max_ns": 140, "samples": 15, "iters_per_sample": 1000, "elements": 10000},
    {"name": "rotAte", "median_ns": 7e3, "mean_ns": 7000, "sigma_ns": 1, "min_ns": 6900, "max_ns": 7100, "samples": 15, "iters_per_sample": 10}
  ]
}
"#;
        let snap = Snapshot::parse(doc).unwrap();
        assert!(!snap.quick);
        assert_eq!(snap.median_ns("hamming/10000"), Some(123.5));
        assert_eq!(snap.median_ns("rotAte"), Some(7000.0));
    }

    #[test]
    fn snapshot_rejects_malformed_documents() {
        assert!(Snapshot::parse("{\"benchmarks\": [{\"name\": \"x\"}]}")
            .unwrap_err()
            .contains("no median_ns"));
        assert!(Snapshot::parse("{\"name\": \"x\", \"median_ns\": oops}").is_err());
        assert!(Snapshot::parse("{\"name\": \"never ends").is_err());
        // no entries at all is fine — an empty snapshot
        assert_eq!(Snapshot::parse("{}").unwrap().medians.len(), 0);
    }

    #[test]
    fn time_and_rate_formatting() {
        assert_eq!(format_time(12.3), "12.3 ns");
        assert_eq!(format_time(12_300.0), "12.30 µs");
        assert_eq!(format_time(12_300_000.0), "12.30 ms");
        assert_eq!(format_time(2_500_000_000.0), "2.500 s");
        assert_eq!(format_rate(1000, 1000.0, "elem"), "1.00 Gelem/s");
    }
}
