//! End-to-end daemon suite: protocol round-trips over real sockets,
//! concurrent pipelined clients at several batch sizes, bit-identity
//! against serial classification, and mid-stream hot swap semantics.

use std::net::TcpStream;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;
use std::time::Duration;

use hdc::rng::rng_for;
use hdc::{BinaryHv, Dim, RecordEncoder};
use hdc_datasets::MinMaxNormalizer;
use lehdc::io::{save_bundle, ModelBundle};
use lehdc::HdcModel;
use lehdc_serve::{Client, ServeConfig, Server};
use testkit::Rng;

const N_FEATURES: usize = 8;

fn test_bundle(seed: u64) -> ModelBundle {
    let dim = Dim::new(256);
    let mut rng = rng_for(seed, 0);
    ModelBundle {
        model: HdcModel::new((0..4).map(|_| BinaryHv::random(dim, &mut rng)).collect()).unwrap(),
        encoder: RecordEncoder::builder(dim, N_FEATURES)
            .levels(8)
            .seed(seed)
            .build()
            .unwrap(),
        normalizer: Some(
            MinMaxNormalizer::from_parts(vec![0.0; N_FEATURES], vec![1.0; N_FEATURES]).unwrap(),
        ),
        selection: None,
    }
}

fn random_rows(n: usize, stream: u64) -> Vec<Vec<f32>> {
    let mut rng = rng_for(99, stream);
    (0..n)
        .map(|_| {
            (0..N_FEATURES)
                .map(|_| (rng.random::<u64>() % 1024) as f32 / 1024.0)
                .collect()
        })
        .collect()
}

fn start(bundle: ModelBundle, max_batch: usize) -> Server {
    let cfg = ServeConfig {
        threads: 2,
        max_batch,
        max_wait: Duration::from_micros(200),
        queue_capacity: 256,
    };
    Server::start(bundle, "127.0.0.1:0", &cfg, obs::Recorder::builder().build()).unwrap()
}

#[test]
fn concurrent_pipelined_clients_match_serial_at_every_batch_size() {
    // The determinism contract: whatever the batching, threading, or
    // interleaving, every response is bit-identical to a serial
    // `bundle.classify` of the same row.
    let bundle = test_bundle(1);
    for max_batch in [1usize, 7, 64] {
        let server = start(bundle.clone(), max_batch);
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let bundle = bundle.clone();
                std::thread::spawn(move || {
                    let rows = random_rows(32, c);
                    let mut client = Client::connect(addr).unwrap();
                    // Pipeline a window of 8 so the collector actually
                    // sees multi-request batches from one connection.
                    let window = 8.min(rows.len());
                    for row in &rows[..window] {
                        client.send_classify(row).unwrap();
                    }
                    for (i, row) in rows.iter().enumerate() {
                        let (class, epoch) = client.recv_classified().unwrap();
                        assert_eq!(epoch, 0, "no swap happened");
                        let expected = bundle.classify(row).unwrap() as u32;
                        assert_eq!(class, expected, "row {i} diverged from serial");
                        if i + window < rows.len() {
                            client.send_classify(&rows[i + window]).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
        server.join();
    }
}

#[test]
fn admin_commands_roundtrip() {
    let bundle = test_bundle(1);
    let server = start(bundle, 64);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let (dim, classes, features, epoch) = client.info().unwrap();
    assert_eq!((dim, classes, features, epoch), (256, 4, N_FEATURES as u64, 0));
    client.classify(&[0.5; N_FEATURES]).unwrap();
    let stats = client.stats().unwrap();
    obs::validate_json_line(&stats).expect("STATS must be valid JSON");
    assert!(stats.contains("serve/requests_total"), "{stats}");
    // Wrong feature count: typed error, connection stays usable.
    let err = client.classify(&[0.5; 3]).unwrap_err();
    assert!(err.to_string().contains("expected 8 features"), "{err}");
    client.ping().unwrap();
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn line_mode_speaks_plain_text() {
    let bundle = test_bundle(1);
    let expected = bundle.classify(&[0.5; N_FEATURES]).unwrap();
    let server = start(bundle, 64);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    let mut roundtrip = |cmd: &str| {
        (&stream).write_all(cmd.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        line.trim().to_string()
    };
    assert_eq!(roundtrip("ping\n"), "ok pong");
    let features = vec!["0.5"; N_FEATURES].join(",");
    assert_eq!(
        roundtrip(&format!("classify {features}\n")),
        format!("ok {expected} epoch=0")
    );
    assert!(roundtrip("classify 1,2\n").starts_with("err "));
    assert!(roundtrip("frobnicate\n").starts_with("err "));
    assert_eq!(roundtrip("shutdown\n"), "ok bye");
    server.join();
}

#[test]
fn hot_swap_is_atomic_and_epoch_stamped() {
    let dir = std::env::temp_dir().join("lehdc_serve_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let next_path = dir.join("next.lehdc");
    let bundle0 = test_bundle(1);
    let bundle1 = test_bundle(2);
    save_bundle(&bundle1, &next_path).unwrap();

    let server = start(bundle0.clone(), 64);
    let addr = server.local_addr();
    let rows = random_rows(64, 7);

    // Phase 1: all responses come from epoch 0 / model 0.
    let mut client = Client::connect(addr).unwrap();
    for row in &rows {
        let (class, epoch) = client.classify(row).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(class, bundle0.classify(row).unwrap() as u32);
    }

    // Swap. The ack happens-after the publish, so every later request is
    // answered by the new model.
    assert_eq!(client.swap(next_path.to_str().unwrap()).unwrap(), 1);
    for row in &rows {
        let (class, epoch) = client.classify(row).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(class, bundle1.classify(row).unwrap() as u32);
    }

    // A bad swap leaves the current model serving.
    assert!(client.swap("/nonexistent.lehdc").is_err());
    let (_, _, _, epoch) = client.info().unwrap();
    assert_eq!(epoch, 1);

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_swap_respects_the_epoch_contract() {
    // While clients hammer the server, another connection swaps mid-stream.
    // The invariant (the whole consistency contract): a response stamped
    // epoch e matches model e's serial classification — never a blend.
    let dir = std::env::temp_dir().join("lehdc_serve_race_test");
    std::fs::create_dir_all(&dir).unwrap();
    let next_path = dir.join("next.lehdc");
    let bundle0 = test_bundle(1);
    let bundle1 = test_bundle(2);
    save_bundle(&bundle1, &next_path).unwrap();

    let server = start(bundle0.clone(), 16);
    let addr = server.local_addr();
    let bundle0 = Arc::new(bundle0);
    let bundle1 = Arc::new(bundle1);

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let (b0, b1) = (Arc::clone(&bundle0), Arc::clone(&bundle1));
            std::thread::spawn(move || {
                let rows = random_rows(96, 200 + c);
                let mut client = Client::connect(addr).unwrap();
                let mut saw = [false, false];
                for row in &rows {
                    let (class, epoch) = client.classify(row).unwrap();
                    let expected = match epoch {
                        0 => b0.classify(row).unwrap(),
                        1 => b1.classify(row).unwrap(),
                        other => panic!("impossible epoch {other}"),
                    };
                    saw[epoch as usize] = true;
                    assert_eq!(class, expected as u32, "epoch {epoch} answer diverged");
                }
                saw
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(5));
    let mut admin = Client::connect(addr).unwrap();
    assert_eq!(admin.swap(next_path.to_str().unwrap()).unwrap(), 1);

    let mut any_new = false;
    for h in clients {
        let saw = h.join().unwrap();
        any_new |= saw[1];
    }
    // The swap lands mid-run, so at least one client must have crossed it.
    assert!(any_new, "no client ever saw the swapped model");

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn non_finite_features_are_rejected_in_both_protocol_modes() {
    let server = start(test_bundle(1), 64);
    let addr = server.local_addr();

    // Binary mode: a well-formed CLASSIFY frame carrying NaN/±inf gets a
    // typed error frame and the connection stays usable.
    let mut client = Client::connect(addr).unwrap();
    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let mut row = vec![0.5f32; N_FEATURES];
        row[2] = bad;
        let err = client.classify(&row).unwrap_err();
        assert!(err.to_string().contains("not finite"), "{err}");
    }
    client.ping().unwrap();

    // Line mode: `f32::parse` would happily accept these spellings.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    let mut roundtrip = |cmd: &str| {
        (&stream).write_all(cmd.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        line.trim().to_string()
    };
    for bad in ["NaN", "inf", "-inf"] {
        let mut cells = vec!["0.5"; N_FEATURES];
        cells[0] = bad;
        let reply = roundtrip(&format!("classify {}\n", cells.join(",")));
        assert!(reply.starts_with("err "), "{bad}: {reply}");
        assert!(reply.contains("not finite"), "{bad}: {reply}");
    }
    // The connection survives and still classifies.
    let good = vec!["0.5"; N_FEATURES].join(",");
    assert!(roundtrip(&format!("classify {good}\n")).starts_with("ok "));

    server.shutdown();
    server.join();
}

#[test]
fn swap_across_formats_and_distillation_is_bit_identical() {
    // The deployment story end-to-end: the daemon starts on one bundle,
    // swaps to (a) the same bundle re-encoded in the legacy format, then
    // (b) a container-format copy, then (c) a distilled sub-D model —
    // and every answer matches the corresponding serial classification.
    use lehdc::format::Compression;
    use lehdc::io::{save_bundle_legacy, save_bundle_with};

    let dir = std::env::temp_dir().join("lehdc_serve_format_swap_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bundle = test_bundle(5);
    let distilled = bundle.distill(64).unwrap();

    let legacy_path = dir.join("legacy.lehdc");
    save_bundle_legacy(&bundle, &legacy_path).unwrap();
    let stored_path = dir.join("stored.lehdc");
    save_bundle_with(&bundle, &stored_path, Compression::Stored).unwrap();
    let packed_path = dir.join("packed.lehdc");
    save_bundle_with(&bundle, &packed_path, Compression::Packed).unwrap();
    let distilled_path = dir.join("distilled.lehdc");
    save_bundle(&distilled, &distilled_path).unwrap();

    let server = start(bundle.clone(), 16);
    let addr = server.local_addr();
    let rows = random_rows(32, 11);
    let mut client = Client::connect(addr).unwrap();

    // Full-width swaps: every format encodes the same model, so answers
    // must be bit-identical to the original bundle across all of them.
    for (i, path) in [&legacy_path, &stored_path, &packed_path].iter().enumerate() {
        let epoch = client.swap(path.to_str().unwrap()).unwrap();
        assert_eq!(epoch, i as u64 + 1);
        for row in &rows {
            let (class, got_epoch) = client.classify(row).unwrap();
            assert_eq!(got_epoch, epoch);
            assert_eq!(
                class,
                bundle.classify(row).unwrap() as u32,
                "format swap {i} diverged from serial"
            );
        }
    }

    // Distilled swap: D drops 256 -> 64 but the serial distilled bundle is
    // the reference — the daemon must project exactly the same way.
    let epoch = client.swap(distilled_path.to_str().unwrap()).unwrap();
    let (dim, _, _, _) = client.info().unwrap();
    assert_eq!(dim, 64, "daemon must report the distilled dimension");
    for row in &rows {
        let (class, got_epoch) = client.classify(row).unwrap();
        assert_eq!(got_epoch, epoch);
        assert_eq!(
            class,
            distilled.classify(row).unwrap() as u32,
            "distilled swap diverged from serial"
        );
    }

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_frames_close_the_connection_without_harm() {
    let server = start(test_bundle(1), 64);
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"LHD1").unwrap();
    stream
        .write_all(&(u32::MAX).to_le_bytes())
        .unwrap(); // absurd frame length
    let mut reader = BufReader::new(stream);
    let mut sink = Vec::new();
    // Server drops the connection (possibly after an error frame).
    let _ = reader.read_to_end(&mut sink);
    // The daemon itself is unharmed.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
    server.join();
}
