//! The micro-batch collector: the perf heart of the daemon.
//!
//! Connection readers enqueue [`ClassifyRequest`]s; one collector thread
//! drains the ring in batches and answers each batch with *one* packed
//! classify fan-out. That coalescing is where the throughput comes from —
//! per-request costs (queue hop, model snapshot, kernel dispatch) are paid
//! once per batch, and the encode + argmax work runs on the persistent
//! threadpool at full width instead of one request at a time.
//!
//! Steady-state request handling allocates nothing: the batch `Vec`s, the
//! packed query hypervectors, and the per-worker [`EncodeScratch`]es are
//! all reused across batches (re-sized only when a hot swap changes the
//! model dimension).

use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdc::kernels::query_block_for;
use hdc::{BinaryHv, Encode, EncodeScratch};
use obs::Recorder;
use threadpool::ThreadPool;

use crate::queue::RingBuffer;
use crate::state::ModelState;

/// A classification outcome sent back to the connection that asked:
/// `(class, model epoch)` or a human-readable rejection.
pub type ClassifyReply = Result<(u32, u64), String>;

/// One enqueued classify request.
pub struct ClassifyRequest {
    /// Raw (un-normalized) feature vector from the client.
    pub features: Vec<f32>,
    /// When the reader enqueued it — measures queue + coalescing wait.
    pub enqueued: Instant,
    /// Rendezvous channel back to the connection's writer.
    pub reply: SyncSender<ClassifyReply>,
}

pub(crate) struct Collector {
    pub queue: Arc<RingBuffer<ClassifyRequest>>,
    pub state: Arc<ModelState>,
    pub pool: ThreadPool,
    pub max_batch: usize,
    pub max_wait: Duration,
    pub rec: Recorder,
}

impl Collector {
    /// Runs until the queue is closed *and* drained, so every request that
    /// made it into the ring is answered even during shutdown.
    pub(crate) fn run(&self) {
        let mut pending: Vec<ClassifyRequest> = Vec::with_capacity(self.max_batch);
        let mut queries: Vec<BinaryHv> = Vec::new();
        let mut scratches: Vec<EncodeScratch> = Vec::new();
        let mut scratch_dim = None;

        while self
            .queue
            .recv_batch(&mut pending, self.max_batch, self.max_wait)
            .is_ok()
        {
            let batch_timer = self.rec.start();
            let snap = self.state.snapshot();
            let bundle = &snap.bundle;

            // Reject shape mismatches and non-finite features up front so
            // the fan-out below is infallible; the rest of the batch
            // proceeds unaffected. The protocol layer already screens for
            // NaN/±inf, so the finiteness check here is defense in depth
            // (e.g. against a future ingress path that skips decode).
            let expected = bundle.n_features();
            pending.retain(|req| {
                if req.features.len() != expected {
                    let _ = req.reply.send(Err(format!(
                        "expected {expected} features, got {}",
                        req.features.len()
                    )));
                    return false;
                }
                if let Some(i) = req.features.iter().position(|v| !v.is_finite()) {
                    let _ = req.reply.send(Err(format!(
                        "feature {i} is not finite (NaN/±inf cannot be quantized)"
                    )));
                    return false;
                }
                true
            });
            let n = pending.len();
            if n == 0 {
                continue;
            }

            // Queries are encoded at the *encoder* dimension; a distilled
            // bundle then projects each one down to the model dimension
            // before the argmax fan-out.
            let enc_dim = bundle.encoder.dim();
            let model_dim = bundle.model.dim();
            if scratch_dim != Some(enc_dim) {
                queries.clear();
                scratches.clear();
                scratch_dim = Some(enc_dim);
            }
            while queries.len() < n {
                queries.push(BinaryHv::zeros(enc_dim));
            }
            let ranges = threadpool::chunk_ranges(n, self.pool.threads());
            while scratches.len() < ranges.len() {
                scratches.push(EncodeScratch::new(enc_dim));
            }

            // Encode fan-out: each worker gets a disjoint slice of requests
            // and output rows plus its own scratch. Normalization happens
            // in place on the request's owned features.
            let encode_timer = self.rec.start();
            {
                let mut tasks = Vec::with_capacity(ranges.len());
                let mut req_rest = &mut pending[..];
                let mut out_rest = &mut queries[..n];
                let mut scratch_rest = &mut scratches[..];
                for range in &ranges {
                    let (reqs, rr) = req_rest.split_at_mut(range.len());
                    let (outs, or) = out_rest.split_at_mut(range.len());
                    let (scratch, sr) = scratch_rest.split_at_mut(1);
                    req_rest = rr;
                    out_rest = or;
                    scratch_rest = sr;
                    tasks.push((reqs, outs, &mut scratch[0]));
                }
                self.pool.for_each_task(tasks, |_, (reqs, outs, scratch)| {
                    for (req, out) in reqs.iter_mut().zip(outs.iter_mut()) {
                        if let Some(norm) = &bundle.normalizer {
                            norm.apply_row(&mut req.features);
                        }
                        bundle
                            .encoder
                            .encode_into(&req.features, scratch, out)
                            .expect("feature counts were validated above");
                    }
                });
            }
            self.rec.observe_since("serve/encode_ns", &encode_timer);

            // One blocked argmax fan-out answers the whole batch.
            let classify_timer = self.rec.start();
            let block = query_block_for(model_dim.words());
            let preds = if bundle.selection.is_some() {
                let projected: Vec<BinaryHv> = queries[..n]
                    .iter()
                    .map(|q| bundle.project_query(q.clone()))
                    .collect();
                bundle
                    .model
                    .classify_all_blocked(&projected, block, self.pool.threads())
            } else {
                bundle
                    .model
                    .classify_all_blocked(&queries[..n], block, self.pool.threads())
            };
            self.rec.observe_since("serve/classify_ns", &classify_timer);

            // Record before replying: a client that just received its
            // answer must see this batch already counted in STATS.
            if self.rec.enabled() {
                let now = Instant::now();
                for req in &pending {
                    let wait = now.saturating_duration_since(req.enqueued);
                    self.rec
                        .observe_ns("serve/queue_wait_ns", wait.as_nanos() as u64);
                }
                self.rec.add("serve/requests_total", n as u64);
                self.rec.add("serve/batches_total", 1);
                self.rec.add(&format!("serve/epoch/{}/requests", snap.epoch), n as u64);
                self.rec.gauge("serve/epoch", snap.epoch as f64);
                self.rec.gauge("serve/last_batch_size", n as f64);
                self.rec.observe_since("serve/batch_ns", &batch_timer);
            }
            for (req, pred) in pending.drain(..).zip(preds) {
                let _ = req.reply.send(Ok((pred as u32, snap.epoch)));
            }
        }
    }
}
