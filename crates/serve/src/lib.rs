//! `lehdc-serve`: a micro-batching TCP inference daemon for LeHDC bundles.
//!
//! The LeHDC pipeline trains a binary classifier whose whole value is cheap
//! inference; this crate is the query front door. A zero-dependency TCP
//! server (`std::net` only) loads a saved model bundle and answers
//! encode+classify requests from many concurrent connections. The perf
//! trick is **micro-batching**: connection readers enqueue requests into a
//! bounded MPSC ring, and a single collector thread drains up to
//! `max_batch` of them (waiting at most `max_wait` past the first arrival),
//! answering the whole batch with one packed `classify_all_blocked` fan-out
//! on the persistent threadpool — so per-request overhead is paid once per
//! batch, and the kernels run at full width.
//!
//! The served model is an epoch-stamped [`Arc`](std::sync::Arc) snapshot
//! that an admin `SWAP` command replaces atomically: in-flight batches
//! finish on the model they snapshotted, new batches see the new epoch, and
//! every classify response carries the epoch that answered it.
//!
//! Module map:
//! - [`protocol`] — length-prefixed binary frames + line-mode fallback
//! - [`queue`] — the bounded ring buffer between readers and the collector
//! - [`batcher`] — the collector: validate, encode fan-out, one classify
//! - [`state`] — epoch-swappable model state
//! - [`server`] — accept loop, connection threads, shutdown orchestration
//! - [`client`] — lockstep + pipelined binary client
//! - [`flags`] — argv parsing shared by the `lehdc_serve`/`lehdc_loadgen` bins

pub mod batcher;
pub mod client;
pub mod flags;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod state;

pub use client::Client;
pub use protocol::{Request, Response};
pub use server::{ServeConfig, Server};
pub use state::{LoadedModel, ModelState};
