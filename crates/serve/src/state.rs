//! The served model: an epoch-stamped, atomically swappable snapshot.
//!
//! Connections and the batch collector never hold the model directly — they
//! take an `Arc` snapshot per batch, so a hot swap publishes a new model
//! without pausing in-flight work. A batch that snapshotted epoch `e`
//! finishes on epoch `e`'s model even if the swap lands mid-batch; the
//! response carries the epoch so clients can observe exactly which model
//! answered. That is the whole consistency contract: *epoch `e` in the
//! response ⇒ classified by model `e`*.

use std::path::Path;
use std::sync::{Arc, RwLock};

use lehdc::io::{load_bundle, ModelBundle};
use lehdc::LehdcError;

/// One immutable generation of the served model.
pub struct LoadedModel {
    /// The deployable bundle (model + encoder + normalizer).
    pub bundle: ModelBundle,
    /// Monotonic generation counter, starting at 0 for the boot model.
    pub epoch: u64,
}

/// Shared, swappable model state.
pub struct ModelState {
    current: RwLock<Arc<LoadedModel>>,
}

impl ModelState {
    /// Wraps the boot-time bundle as epoch 0.
    #[must_use]
    pub fn new(bundle: ModelBundle) -> Self {
        Self {
            current: RwLock::new(Arc::new(LoadedModel { bundle, epoch: 0 })),
        }
    }

    /// The current model generation. The returned `Arc` stays valid (and
    /// the old model alive) across any number of subsequent swaps.
    #[must_use]
    pub fn snapshot(&self) -> Arc<LoadedModel> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Loads a bundle from `path` and publishes it as the next epoch.
    /// Loading (the expensive, fallible part) happens outside the lock; the
    /// swap itself is one pointer store, so readers never block on disk IO.
    /// On any load error the current model keeps serving untouched.
    ///
    /// # Errors
    ///
    /// As [`load_bundle`]; additionally rejects a bundle whose
    /// feature count differs from the serving model's, since already-queued
    /// requests were validated against the old shape.
    pub fn swap_from(&self, path: &Path) -> Result<u64, LehdcError> {
        let bundle = load_bundle(path)?;
        let expected = self.snapshot().bundle.n_features();
        if bundle.n_features() != expected {
            return Err(LehdcError::InvalidConfig(format!(
                "{}: swap would change the feature count from {expected} to {} — \
                 queued requests would be misinterpreted",
                path.display(),
                bundle.n_features()
            )));
        }
        let mut current = self.current.write().unwrap();
        let epoch = current.epoch + 1;
        *current = Arc::new(LoadedModel { bundle, epoch });
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::rng_for;
    use hdc::{BinaryHv, Dim, RecordEncoder};
    use lehdc::io::save_bundle;
    use lehdc::HdcModel;

    fn bundle(seed: u64, n_features: usize) -> ModelBundle {
        let dim = Dim::new(128);
        let mut rng = rng_for(seed, 0);
        ModelBundle {
            model: HdcModel::new((0..3).map(|_| BinaryHv::random(dim, &mut rng)).collect())
                .unwrap(),
            encoder: RecordEncoder::builder(dim, n_features)
                .levels(4)
                .seed(seed)
                .build()
                .unwrap(),
            normalizer: None,
            selection: None,
        }
    }

    #[test]
    fn swap_bumps_epoch_and_old_snapshots_survive() {
        let dir = std::env::temp_dir().join("lehdc_serve_state_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.lehdc");
        save_bundle(&bundle(2, 4), &path).unwrap();

        let state = ModelState::new(bundle(1, 4));
        let before = state.snapshot();
        assert_eq!(before.epoch, 0);
        assert_eq!(state.swap_from(&path).unwrap(), 1);
        assert_eq!(state.snapshot().epoch, 1);
        // The pre-swap snapshot still classifies with the old model.
        assert_eq!(before.epoch, 0);
        before.bundle.classify(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_swap_leaves_the_model_serving() {
        let state = ModelState::new(bundle(1, 4));
        assert!(state.swap_from(Path::new("/nonexistent.lehdc")).is_err());
        assert_eq!(state.snapshot().epoch, 0);
    }

    #[test]
    fn swap_rejects_feature_count_changes() {
        let dir = std::env::temp_dir().join("lehdc_serve_state_shape_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wide.lehdc");
        save_bundle(&bundle(3, 9), &path).unwrap();
        let state = ModelState::new(bundle(1, 4));
        let err = state.swap_from(&path).unwrap_err();
        assert!(err.to_string().contains("feature count"), "{err}");
        assert_eq!(state.snapshot().epoch, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
