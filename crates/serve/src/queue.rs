//! Bounded MPSC ring buffer feeding the micro-batch collector.
//!
//! Many connection reader threads push classify requests; one collector
//! thread drains them in batches. The ring is a fixed-capacity circular
//! buffer under a mutex with two condvars (`not_empty` / `not_full`), so a
//! burst beyond `capacity` applies backpressure to producers instead of
//! growing memory without bound.
//!
//! The consumer side is batch-shaped on purpose: [`RingBuffer::recv_batch`]
//! blocks for the *first* item, then keeps collecting until either
//! `max_batch` items are in hand or `max_wait` has elapsed since that first
//! arrival. That deadline — not a per-item timeout — is what bounds the
//! latency a lone request pays for the chance of being coalesced.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Result of a blocking receive on a closed, drained queue.
#[derive(Debug, PartialEq, Eq)]
pub struct Closed;

struct Ring<T> {
    slots: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// Bounded multi-producer single-consumer queue with batch draining.
pub struct RingBuffer<T> {
    ring: Mutex<Ring<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> RingBuffer<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be nonzero");
        Self {
            ring: Mutex::new(Ring {
                slots: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues an item, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue was closed before it could be
    /// enqueued, so the producer can fail the request instead of losing it.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut ring = self.ring.lock().unwrap();
        while ring.slots.len() == ring.capacity && !ring.closed {
            ring = self.not_full.wait(ring).unwrap();
        }
        if ring.closed {
            return Err(item);
        }
        ring.slots.push_back(item);
        drop(ring);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Drains up to `max_batch` items into `out` (cleared first), in FIFO
    /// order. Blocks until at least one item arrives, then waits up to
    /// `max_wait` past that first arrival for the batch to fill.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] once the queue is closed *and* fully drained;
    /// items enqueued before [`close`](Self::close) are still delivered.
    pub fn recv_batch(&self, out: &mut Vec<T>, max_batch: usize, max_wait: Duration) -> Result<(), Closed> {
        out.clear();
        let max_batch = max_batch.max(1);
        let mut ring = self.ring.lock().unwrap();
        while ring.slots.is_empty() {
            if ring.closed {
                return Err(Closed);
            }
            ring = self.not_empty.wait(ring).unwrap();
        }
        let deadline = Instant::now() + max_wait;
        loop {
            while out.len() < max_batch {
                match ring.slots.pop_front() {
                    Some(item) => out.push(item),
                    None => break,
                }
            }
            if out.len() >= max_batch || ring.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self.not_empty.wait_timeout(ring, deadline - now).unwrap();
            ring = guard;
            if timeout.timed_out() && ring.slots.is_empty() {
                break;
            }
        }
        drop(ring);
        // Producers blocked on a full ring can move up now.
        self.not_full.notify_all();
        Ok(())
    }

    /// Closes the queue: future pushes fail, and the consumer drains what
    /// remains before seeing [`Closed`]. Idempotent.
    pub fn close(&self) {
        let mut ring = self.ring.lock().unwrap();
        ring.closed = true;
        drop(ring);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued (racy — diagnostics only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().slots.len()
    }

    /// Whether the queue is currently empty (racy — diagnostics only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn batches_preserve_fifo_order() {
        let q = RingBuffer::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut batch = Vec::new();
        q.recv_batch(&mut batch, 4, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        q.recv_batch(&mut batch, 100, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn recv_waits_for_first_item() {
        let q = Arc::new(RingBuffer::new(4));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                q.push(42u32).unwrap();
            })
        };
        let mut batch = Vec::new();
        q.recv_batch(&mut batch, 8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![42]);
        producer.join().unwrap();
    }

    #[test]
    fn max_wait_collects_stragglers() {
        let q = Arc::new(RingBuffer::new(16));
        q.push(1u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                q.push(2).unwrap();
            })
        };
        let mut batch = Vec::new();
        q.recv_batch(&mut batch, 8, Duration::from_millis(500)).unwrap();
        producer.join().unwrap();
        // The straggler lands well inside the 500ms window.
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn full_queue_applies_backpressure_then_drains() {
        let q = Arc::new(RingBuffer::new(2));
        q.push(0u32).unwrap();
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(2)) // blocks until consumer drains
        };
        thread::sleep(Duration::from_millis(10));
        let mut batch = Vec::new();
        q.recv_batch(&mut batch, 2, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1]);
        producer.join().unwrap().unwrap();
        q.recv_batch(&mut batch, 2, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![2]);
    }

    #[test]
    fn close_drains_remaining_then_reports_closed() {
        let q = RingBuffer::new(8);
        q.push(7u32).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8));
        let mut batch = Vec::new();
        q.recv_batch(&mut batch, 8, Duration::from_millis(50)).unwrap();
        assert_eq!(batch, vec![7]);
        assert_eq!(q.recv_batch(&mut batch, 8, Duration::ZERO), Err(Closed));
    }

    #[test]
    fn close_unblocks_full_producer() {
        let q = Arc::new(RingBuffer::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1));
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let q = Arc::new(RingBuffer::new(32));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100u32 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                let mut batch = Vec::new();
                while q.recv_batch(&mut batch, 16, Duration::from_micros(100)).is_ok() {
                    seen.extend_from_slice(&batch);
                }
                seen
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        let mut expect: Vec<u32> = (0..4).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }
}
