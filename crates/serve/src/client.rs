//! A minimal binary-protocol client, shared by the load generator, the
//! smoke gate, and the integration tests.
//!
//! Besides lockstep request/response calls it supports *pipelining*:
//! [`Client::send_classify`] puts a request on the wire without waiting,
//! and [`Client::recv_classified`] collects replies in order. Keeping a
//! window of W requests in flight is what lets the server's collector see
//! more than one request per connection at a time — the difference the
//! `serve_batch` bench measures.

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_response, encode_request, read_frame, Request, Response, BINARY_MAGIC,
};

/// A connected binary-mode client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    frame: Vec<u8>,
    payload: Vec<u8>,
}

fn bad_reply(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn server_err(msg: String) -> io::Error {
    io::Error::other(format!("server error: {msg}"))
}

impl Client {
    /// Connects and announces the binary protocol.
    ///
    /// # Errors
    ///
    /// Returns connect/handshake IO failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let mut writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        writer.write_all(&BINARY_MAGIC)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            frame: Vec::new(),
            payload: Vec::new(),
        })
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        encode_request(req, &mut self.frame);
        self.writer.write_all(&self.frame)
    }

    fn recv(&mut self) -> io::Result<Response> {
        if !read_frame(&mut self.reader, &mut self.payload)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        decode_response(&self.payload).map_err(bad_reply)
    }

    /// One lockstep request/response exchange.
    ///
    /// # Errors
    ///
    /// Returns transport failures; a server-side [`Response::Error`] is
    /// returned as the response, not an `Err`.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Classifies one feature vector, returning `(class, model epoch)`.
    ///
    /// # Errors
    ///
    /// Transport failures, plus server-side rejections mapped to
    /// [`io::ErrorKind::Other`].
    pub fn classify(&mut self, features: &[f32]) -> io::Result<(u32, u64)> {
        self.send_classify(features)?;
        self.recv_classified()
    }

    /// Puts a classify request on the wire without waiting for the reply —
    /// the pipelining half; pair with [`Client::recv_classified`].
    ///
    /// # Errors
    ///
    /// Returns write failures.
    pub fn send_classify(&mut self, features: &[f32]) -> io::Result<()> {
        // Avoid cloning the feature slice into a Request just to encode it.
        self.frame.clear();
        self.frame.extend_from_slice(&[0u8; 4]);
        self.frame.push(0x01);
        self.frame
            .extend_from_slice(&(features.len() as u32).to_le_bytes());
        for &f in features {
            self.frame.extend_from_slice(&f.to_le_bytes());
        }
        let len = (self.frame.len() - 4) as u32;
        self.frame[..4].copy_from_slice(&len.to_le_bytes());
        self.writer.write_all(&self.frame)
    }

    /// Receives the next in-order classify reply.
    ///
    /// # Errors
    ///
    /// As [`Client::classify`].
    pub fn recv_classified(&mut self) -> io::Result<(u32, u64)> {
        match self.recv()? {
            Response::Classified { class, epoch } => Ok((class, epoch)),
            Response::Error(msg) => Err(server_err(msg)),
            other => Err(bad_reply(format!("expected a classification, got {other:?}"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(bad_reply(format!("expected pong, got {other:?}"))),
        }
    }

    /// Drains the server's metrics as a JSON object string.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            Response::Error(msg) => Err(server_err(msg)),
            other => Err(bad_reply(format!("expected stats, got {other:?}"))),
        }
    }

    /// Model shape and epoch: `(dim, classes, features, epoch)`.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn info(&mut self) -> io::Result<(u64, u64, u64, u64)> {
        match self.call(&Request::Info)? {
            Response::Info {
                dim,
                classes,
                features,
                epoch,
            } => Ok((dim, classes, features, epoch)),
            Response::Error(msg) => Err(server_err(msg)),
            other => Err(bad_reply(format!("expected info, got {other:?}"))),
        }
    }

    /// Hot-swaps the served bundle; returns the new epoch.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side load rejection.
    pub fn swap(&mut self, path: &str) -> io::Result<u64> {
        match self.call(&Request::Swap(path.to_string()))? {
            Response::Swapped { epoch } => Ok(epoch),
            Response::Error(msg) => Err(server_err(msg)),
            other => Err(bad_reply(format!("expected swap ack, got {other:?}"))),
        }
    }

    /// Asks the daemon to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(bad_reply(format!("expected shutdown ack, got {other:?}"))),
        }
    }
}
