//! Tiny `--flag value` parser shared by the `lehdc_serve` and
//! `lehdc_loadgen` binaries (the workspace is hermetic — no argv crates).

use std::collections::HashMap;
use std::str::FromStr;

/// Parses `--name value` and bare `--name` boolean flags.
///
/// # Errors
///
/// Returns a usage message for unknown flags, missing values, or
/// non-flag positional arguments.
pub fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, found {key:?}"));
        };
        if bool_flags.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
        } else if value_flags.contains(&name) {
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            let known: Vec<String> = value_flags
                .iter()
                .chain(bool_flags)
                .map(|f| format!("--{f}"))
                .collect();
            return Err(format!(
                "unknown flag --{name} (expected one of: {})",
                known.join(", ")
            ));
        }
    }
    Ok(flags)
}

/// Fetches a mandatory flag value.
///
/// # Errors
///
/// Returns a usage message naming the missing flag.
pub fn required<'a>(
    flags: &'a HashMap<String, String>,
    name: &str,
) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("--{name} is required"))
}

/// Parses a numeric flag, falling back to `default` when absent.
///
/// # Errors
///
/// Returns a usage message when the value does not parse.
pub fn parse_num<T: FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{name} got an unparsable value {raw:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_values_bools_and_defaults() {
        let flags = parse_flags(
            &args(&["--model", "m.lehdc", "--verbose", "--threads", "4"]),
            &["model", "threads"],
            &["verbose"],
        )
        .unwrap();
        assert_eq!(required(&flags, "model").unwrap(), "m.lehdc");
        assert_eq!(parse_num(&flags, "threads", 1usize).unwrap(), 4);
        assert_eq!(parse_num(&flags, "window", 32usize).unwrap(), 32);
        assert!(flags.contains_key("verbose"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_flags(&args(&["model"]), &["model"], &[]).is_err());
        assert!(parse_flags(&args(&["--model"]), &["model"], &[]).is_err());
        assert!(parse_flags(&args(&["--bogus", "1"]), &["model"], &[]).is_err());
        let flags = parse_flags(&args(&["--threads", "abc"]), &["threads"], &[]).unwrap();
        assert!(parse_num(&flags, "threads", 1usize).is_err());
        assert!(required(&flags, "model").is_err());
    }
}
