//! The TCP daemon: accept loop, per-connection reader/writer threads, and
//! shutdown orchestration around the shared micro-batch collector.
//!
//! Threading model — one collector, two threads per connection:
//!
//! ```text
//! accept thread ──spawns──▶ connection thread (reader)
//!                             │  classify ──▶ ring buffer ──▶ collector ──▶ pool
//!                             │  admin ops answered inline
//!                             ▼ per-request [`Pending`] entries, in order
//!                           writer thread (resolves + frames + coalesced flush)
//! ```
//!
//! The reader never waits for a classification: it enqueues the request and
//! a placeholder in the connection's response queue, then reads the next
//! frame. The writer resolves placeholders *in request order*, so pipelined
//! clients get responses in the order they asked — that ordering plus the
//! epoch stamp is what the determinism suite checks.
//!
//! Shutdown never drops an accepted request: the ring is closed (pushes
//! start failing with a clean error), the collector drains what is already
//! queued, and only then are connection sockets shut down to unblock any
//! reader parked in `read_exact`.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lehdc::io::ModelBundle;
use obs::Recorder;
use threadpool::ThreadPool;

use crate::batcher::{ClassifyReply, ClassifyRequest, Collector};
use crate::protocol::{
    self, decode_request, encode_response, parse_line, read_frame, render_line, Request, Response,
    BINARY_MAGIC,
};
use crate::queue::RingBuffer;
use crate::state::ModelState;

/// Tuning knobs for the daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pool width for the encode + classify fan-outs.
    pub threads: usize,
    /// Largest batch one collector round may answer.
    pub max_batch: usize,
    /// How long a batch may wait past its first request to fill up — the
    /// latency each lone request risks for the chance of coalescing.
    pub max_wait: Duration,
    /// Ring-buffer capacity; producers beyond it block (backpressure).
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
        }
    }
}

/// Everything the accept loop, connections, and collector share. The model
/// state and ring are their own `Arc`s because the collector thread borrows
/// exactly those two, not the connection bookkeeping.
struct Shared {
    state: Arc<ModelState>,
    queue: Arc<RingBuffer<ClassifyRequest>>,
    rec: Recorder,
    shutting_down: AtomicBool,
    local_addr: SocketAddr,
    /// Clones of live connection sockets (keyed by connection id), so
    /// shutdown can unblock parked readers. Entries are removed when the
    /// connection ends — otherwise the clone would hold the socket open
    /// past the client's close.
    streams: Mutex<Vec<(u64, TcpStream)>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    active_conns: AtomicU64,
    next_conn_id: AtomicU64,
}

impl Shared {
    /// Idempotent shutdown trigger: stops accepting, closes the ring (the
    /// collector drains what is queued, then exits), and shuts down live
    /// sockets so parked readers return. Callable from any thread,
    /// including a connection's own reader (the SHUTDOWN command).
    fn trigger_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Wake the accept thread; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.local_addr);
        // Shut down only the read half: parked readers wake with EOF, but
        // the write direction stays open so already-queued replies (and
        // the shutdown ack itself) still reach their clients.
        for (_, stream) in self.streams.lock().unwrap().drain(..) {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// A running daemon. Dropping it without [`Server::shutdown`] leaves the
/// threads running; call [`Server::join`] to block until it exits.
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    collector_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port — see
    /// [`Server::local_addr`]) and starts serving `bundle`.
    ///
    /// # Errors
    ///
    /// Returns the bind error, if any; everything after the bind is
    /// infallible thread spawning.
    pub fn start<A: ToSocketAddrs>(
        bundle: ModelBundle,
        addr: A,
        cfg: &ServeConfig,
        rec: Recorder,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Arc::new(ModelState::new(bundle)),
            queue: Arc::new(RingBuffer::new(cfg.queue_capacity)),
            rec,
            shutting_down: AtomicBool::new(false),
            local_addr,
            streams: Mutex::new(Vec::new()),
            conn_handles: Mutex::new(Vec::new()),
            active_conns: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(0),
        });

        let collector_handle = {
            let shared = Arc::clone(&shared);
            let pool = ThreadPool::new(cfg.threads);
            let max_batch = cfg.max_batch.max(1);
            let max_wait = cfg.max_wait;
            std::thread::Builder::new()
                .name("lehdc-serve-collector".into())
                .spawn(move || {
                    Collector {
                        queue: Arc::clone(&shared.queue),
                        state: Arc::clone(&shared.state),
                        pool,
                        max_batch,
                        max_wait,
                        rec: shared.rec.clone(),
                    }
                    .run();
                })
                .expect("spawning the collector thread")
        };

        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lehdc-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawning the accept thread")
        };

        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            collector_handle: Some(collector_handle),
        })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Asks the daemon to drain and exit. Idempotent; also triggered by a
    /// client SHUTDOWN command. Queued requests are still answered.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Blocks until the daemon has fully exited (accept loop, collector,
    /// and every connection thread).
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.collector_handle.take() {
            let _ = h.join();
        }
        loop {
            let handle = self.shared.conn_handles.lock().unwrap().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.streams.lock().unwrap().push((conn_id, clone));
        }
        shared.rec.add("serve/connections_total", 1);
        shared
            .rec
            .gauge("serve/connections_active", shared.active_conns.fetch_add(1, Ordering::SeqCst) as f64 + 1.0);
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("lehdc-serve-conn-{conn_id}"))
            .spawn(move || {
                handle_connection(&shared_conn, stream, conn_id);
                shared_conn.streams.lock().unwrap().retain(|(id, _)| *id != conn_id);
                let remaining = shared_conn.active_conns.fetch_sub(1, Ordering::SeqCst) - 1;
                shared_conn.rec.gauge("serve/connections_active", remaining as f64);
            })
            .expect("spawning a connection thread");
        shared.conn_handles.lock().unwrap().push(handle);
    }
}

/// One entry in a connection's in-order response queue: either already
/// resolved (admin ops, rejections) or awaiting the collector's reply.
enum Pending {
    Ready(Response),
    Wait(Receiver<ClassifyReply>),
    /// Write everything before this point, then close the connection.
    Close,
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    // Mode detection: binary clients lead with the 4-byte magic; anything
    // else is the first bytes of a line-mode command (all commands are at
    // least 4 bytes long, so this read never straddles a whole command).
    let mut preamble = [0u8; 4];
    let mut read_half = stream;
    if read_half.read_exact(&mut preamble).is_err() {
        return;
    }
    let binary = preamble == BINARY_MAGIC;

    let Ok(write_half) = read_half.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Pending>();
    let writer_handle = std::thread::Builder::new()
        .name(format!("lehdc-serve-write-{conn_id}"))
        .spawn(move || writer_loop(write_half, &rx, binary))
        .expect("spawning a connection writer thread");

    let requests = if binary {
        binary_reader_loop(shared, BufReader::new(read_half), &tx)
    } else {
        let reader = BufReader::new(preamble.as_slice().chain(read_half));
        line_reader_loop(shared, reader, &tx)
    };
    drop(tx); // writer drains, flushes, and exits
    let _ = writer_handle.join();
    if shared.rec.enabled() {
        shared.rec.add(&format!("serve/conn/{conn_id}/requests"), requests);
    }
}

fn writer_loop(stream: TcpStream, rx: &Receiver<Pending>, binary: bool) {
    let mut writer = BufWriter::new(stream);
    let mut frame = Vec::new();
    'outer: loop {
        let Ok(mut item) = rx.recv() else { break };
        loop {
            let resp = match item {
                Pending::Ready(resp) => resp,
                Pending::Wait(reply_rx) => match reply_rx.recv() {
                    Ok(Ok((class, epoch))) => Response::Classified { class, epoch },
                    Ok(Err(msg)) => Response::Error(msg),
                    // The request was dropped on the floor (collector
                    // gone); tell the client rather than stalling it.
                    Err(_) => Response::Error("server shutting down".into()),
                },
                Pending::Close => break 'outer,
            };
            let ok = if binary {
                encode_response(&resp, &mut frame);
                protocol::write_frame(&mut writer, &frame).is_ok()
            } else {
                writer.write_all(render_line(&resp).as_bytes()).is_ok()
            };
            if !ok {
                break 'outer;
            }
            // Keep writing while responses are ready — one flush per lull
            // coalesces pipelined responses into few packets.
            match rx.try_recv() {
                Ok(next) => item = next,
                Err(TryRecvError::Empty) => {
                    let _ = writer.flush();
                    break;
                }
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
    }
    let _ = writer.flush();
}

/// Handles one decoded request on the reader thread. Classifications go to
/// the ring; everything else is answered inline. Returns `false` when the
/// connection should close (client shutdown command).
fn handle_request(shared: &Arc<Shared>, req: Request, tx: &Sender<Pending>) -> bool {
    match req {
        Request::Classify(features) => {
            let (reply_tx, reply_rx) = mpsc::sync_channel::<ClassifyReply>(1);
            let request = ClassifyRequest {
                features,
                enqueued: Instant::now(),
                reply: reply_tx,
            };
            match shared.queue.push(request) {
                Ok(()) => {
                    let _ = tx.send(Pending::Wait(reply_rx));
                }
                Err(_) => {
                    let _ = tx.send(Pending::Ready(Response::Error(
                        "server shutting down".into(),
                    )));
                }
            }
        }
        Request::Ping => {
            let _ = tx.send(Pending::Ready(Response::Pong));
        }
        Request::Stats => {
            let _ = tx.send(Pending::Ready(Response::Stats(shared.rec.metrics_json())));
        }
        Request::Info => {
            let snap = shared.state.snapshot();
            let _ = tx.send(Pending::Ready(Response::Info {
                dim: snap.bundle.model.dim().get() as u64,
                classes: snap.bundle.model.n_classes() as u64,
                features: snap.bundle.n_features() as u64,
                epoch: snap.epoch,
            }));
        }
        Request::Swap(path) => {
            let resp = match shared.state.swap_from(std::path::Path::new(&path)) {
                Ok(epoch) => {
                    shared.rec.add("serve/swaps_total", 1);
                    Response::Swapped { epoch }
                }
                Err(e) => Response::Error(e.to_string()),
            };
            let _ = tx.send(Pending::Ready(resp));
        }
        Request::Shutdown => {
            let _ = tx.send(Pending::Ready(Response::ShuttingDown));
            let _ = tx.send(Pending::Close);
            shared.trigger_shutdown();
            return false;
        }
    }
    true
}

fn binary_reader_loop<R: Read>(
    shared: &Arc<Shared>,
    mut reader: R,
    tx: &Sender<Pending>,
) -> u64 {
    let mut payload = Vec::new();
    let mut requests = 0u64;
    loop {
        match read_frame(&mut reader, &mut payload) {
            Ok(true) => {}
            Ok(false) => break, // clean EOF at a frame boundary
            Err(e) => {
                // The stream offset can no longer be trusted; report the
                // framing error (best effort) and close the connection.
                if e.kind() == io::ErrorKind::InvalidData {
                    let _ = tx.send(Pending::Ready(Response::Error(e.to_string())));
                    let _ = tx.send(Pending::Close);
                }
                break;
            }
        }
        requests += 1;
        match decode_request(&payload) {
            Ok(req) => {
                if !handle_request(shared, req, tx) {
                    break;
                }
            }
            // Frame boundaries are intact, so a malformed payload is
            // recoverable: report it and keep reading.
            Err(msg) => {
                let _ = tx.send(Pending::Ready(Response::Error(msg)));
            }
        }
    }
    requests
}

fn line_reader_loop<R: BufRead>(
    shared: &Arc<Shared>,
    mut reader: R,
    tx: &Sender<Pending>,
) -> u64 {
    let mut line = String::new();
    let mut requests = 0u64;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        requests += 1;
        match parse_line(&line) {
            Ok(req) => {
                if !handle_request(shared, req, tx) {
                    break;
                }
            }
            Err(msg) => {
                let _ = tx.send(Pending::Ready(Response::Error(msg)));
            }
        }
    }
    requests
}
