//! The wire protocol: length-prefixed binary frames with a line-mode
//! fallback.
//!
//! A binary client opens the connection by writing the 4-byte magic
//! [`BINARY_MAGIC`]; anything else switches the connection into line mode
//! (one text command per line — the netcat-friendly debug surface). Both
//! modes drive the same request queue, so line-mode classifications are
//! micro-batched exactly like binary ones.
//!
//! # Binary frame layout
//!
//! Every frame — request or response — is a `u32` little-endian payload
//! length followed by the payload. Request payloads start with an opcode
//! byte:
//!
//! ```text
//! 0x01 CLASSIFY  u32 n, then n × f32 LE features
//! 0x02 PING      (empty)
//! 0x03 STATS     (empty)
//! 0x04 INFO      (empty)
//! 0x05 SWAP      UTF-8 bundle path
//! 0x06 SHUTDOWN  (empty)
//! ```
//!
//! Response payloads start with a status byte: `0x00` is an error (the rest
//! of the payload is a UTF-8 message); any other value echoes the request
//! opcode and is followed by that opcode's result:
//!
//! ```text
//! CLASSIFY  u32 class, u64 model epoch
//! PING      (empty)
//! STATS     UTF-8 JSON object of drained counters/gauges/histograms
//! INFO      u64 dim, u64 classes, u64 features, u64 model epoch
//! SWAP      u64 new model epoch
//! SHUTDOWN  (empty)
//! ```
//!
//! Frames are capped at [`MAX_FRAME`] bytes; an oversized or malformed
//! frame is a protocol error and the server closes the connection after
//! replying, since the stream offset can no longer be trusted.

use std::io::{self, Read, Write};

/// Connection preamble selecting the binary protocol. Absent (any other
/// first bytes), the connection runs in line mode.
pub const BINARY_MAGIC: [u8; 4] = *b"LHD1";

/// Upper bound on a frame payload, bounding per-connection memory. A
/// classify request for 1M features is 4 MB, so 16 MB leaves generous
/// headroom while still rejecting garbage lengths instantly.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

const OP_CLASSIFY: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_INFO: u8 = 0x04;
const OP_SWAP: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const STATUS_ERROR: u8 = 0x00;

/// Rejects feature vectors that cannot be quantized. Both wire dialects
/// funnel through this before a classify request reaches the batcher, so
/// NaN/±inf never poison a shared micro-batch.
fn check_features_finite(features: &[f32]) -> Result<(), String> {
    match features.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(format!(
            "classify feature {i} is not finite (NaN/±inf cannot be quantized)"
        )),
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Encode + classify one feature vector.
    Classify(Vec<f32>),
    /// Liveness probe.
    Ping,
    /// Drain the server's metrics as JSON.
    Stats,
    /// Model shape and epoch.
    Info,
    /// Atomically hot-swap the served model bundle.
    Swap(String),
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Predicted class plus the epoch of the model that answered.
    Classified {
        /// Predicted class index.
        class: u32,
        /// Epoch of the model snapshot that served the request.
        epoch: u64,
    },
    /// Liveness reply.
    Pong,
    /// Metrics snapshot as a JSON object.
    Stats(String),
    /// Model shape and epoch.
    Info {
        /// Hypervector dimensionality `D`.
        dim: u64,
        /// Number of classes `K`.
        classes: u64,
        /// Expected feature count `N` per classify request.
        features: u64,
        /// Current model epoch.
        epoch: u64,
    },
    /// Hot swap succeeded; the new model epoch.
    Swapped {
        /// Epoch of the freshly loaded model.
        epoch: u64,
    },
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// The request failed; human-readable reason.
    Error(String),
}

/// Serializes a request into `buf` (cleared first): length prefix plus
/// payload, ready for a single `write_all`.
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&[0u8; 4]); // length back-patched below
    match req {
        Request::Classify(features) => {
            buf.push(OP_CLASSIFY);
            buf.extend_from_slice(&(features.len() as u32).to_le_bytes());
            for &f in features {
                buf.extend_from_slice(&f.to_le_bytes());
            }
        }
        Request::Ping => buf.push(OP_PING),
        Request::Stats => buf.push(OP_STATS),
        Request::Info => buf.push(OP_INFO),
        Request::Swap(path) => {
            buf.push(OP_SWAP);
            buf.extend_from_slice(path.as_bytes());
        }
        Request::Shutdown => buf.push(OP_SHUTDOWN),
    }
    patch_len(buf);
}

/// Serializes a response into `buf` (cleared first).
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&[0u8; 4]);
    match resp {
        Response::Classified { class, epoch } => {
            buf.push(OP_CLASSIFY);
            buf.extend_from_slice(&class.to_le_bytes());
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::Pong => buf.push(OP_PING),
        Response::Stats(json) => {
            buf.push(OP_STATS);
            buf.extend_from_slice(json.as_bytes());
        }
        Response::Info {
            dim,
            classes,
            features,
            epoch,
        } => {
            buf.push(OP_INFO);
            for v in [dim, classes, features, epoch] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Swapped { epoch } => {
            buf.push(OP_SWAP);
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::ShuttingDown => buf.push(OP_SHUTDOWN),
        Response::Error(msg) => {
            buf.push(STATUS_ERROR);
            buf.extend_from_slice(msg.as_bytes());
        }
    }
    patch_len(buf);
}

fn patch_len(buf: &mut [u8]) {
    let len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&len.to_le_bytes());
}

/// Reads one frame payload into `buf` (resized to fit). Returns `Ok(false)`
/// on a clean EOF at a frame boundary, `Err` on a truncated frame, an
/// oversized length, or any transport failure.
pub fn read_frame<R: Read>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    // Read the first prefix byte alone: EOF *here* is a clean close at a
    // frame boundary; EOF anywhere later is a truncated frame.
    match reader.read(&mut len_bytes[..1]) {
        Ok(0) => return Ok(false),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(reader, buf);
        }
        Err(e) => return Err(e),
    }
    reader.read_exact(&mut len_bytes[1..])?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside (0, {MAX_FRAME}]"),
        ));
    }
    buf.resize(len, 0);
    reader.read_exact(buf)?;
    Ok(true)
}

/// Writes one already-encoded frame (as produced by [`encode_request`] /
/// [`encode_response`]).
pub fn write_frame<W: Write>(writer: &mut W, frame: &[u8]) -> io::Result<()> {
    writer.write_all(frame)
}

/// Decodes a request payload.
///
/// # Errors
///
/// Returns a human-readable description of the malformation; the server
/// sends it back as a [`Response::Error`].
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let (&op, rest) = payload.split_first().ok_or("empty request payload")?;
    match op {
        OP_CLASSIFY => {
            if rest.len() < 4 {
                return Err("classify payload shorter than its count field".into());
            }
            let (count_bytes, feat_bytes) = rest.split_at(4);
            let n = u32::from_le_bytes(count_bytes.try_into().unwrap()) as usize;
            if feat_bytes.len() != n * 4 {
                return Err(format!(
                    "classify declares {n} features but carries {} bytes",
                    feat_bytes.len()
                ));
            }
            let features: Vec<f32> = feat_bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            check_features_finite(&features)?;
            Ok(Request::Classify(features))
        }
        OP_PING => Ok(Request::Ping),
        OP_STATS => Ok(Request::Stats),
        OP_INFO => Ok(Request::Info),
        OP_SWAP => String::from_utf8(rest.to_vec())
            .map(Request::Swap)
            .map_err(|_| "swap path is not valid UTF-8".into()),
        OP_SHUTDOWN => Ok(Request::Shutdown),
        other => Err(format!("unknown request opcode {other:#04x}")),
    }
}

/// Decodes a response payload.
///
/// # Errors
///
/// Returns a description of the malformation (client side: the server spoke
/// an unexpected dialect).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let (&status, rest) = payload.split_first().ok_or("empty response payload")?;
    match status {
        STATUS_ERROR => Ok(Response::Error(
            String::from_utf8_lossy(rest).into_owned(),
        )),
        OP_CLASSIFY => {
            if rest.len() != 12 {
                return Err(format!("classified payload must be 12 bytes, got {}", rest.len()));
            }
            Ok(Response::Classified {
                class: u32::from_le_bytes(rest[..4].try_into().unwrap()),
                epoch: u64::from_le_bytes(rest[4..].try_into().unwrap()),
            })
        }
        OP_PING => Ok(Response::Pong),
        OP_STATS => String::from_utf8(rest.to_vec())
            .map(Response::Stats)
            .map_err(|_| "stats payload is not valid UTF-8".into()),
        OP_INFO => {
            if rest.len() != 32 {
                return Err(format!("info payload must be 32 bytes, got {}", rest.len()));
            }
            let word = |i: usize| u64::from_le_bytes(rest[i * 8..(i + 1) * 8].try_into().unwrap());
            Ok(Response::Info {
                dim: word(0),
                classes: word(1),
                features: word(2),
                epoch: word(3),
            })
        }
        OP_SWAP => {
            if rest.len() != 8 {
                return Err(format!("swapped payload must be 8 bytes, got {}", rest.len()));
            }
            Ok(Response::Swapped {
                epoch: u64::from_le_bytes(rest.try_into().unwrap()),
            })
        }
        OP_SHUTDOWN => Ok(Response::ShuttingDown),
        other => Err(format!("unknown response status {other:#04x}")),
    }
}

/// Renders a response in line mode: `ok ...` / `err ...`, one line.
#[must_use]
pub fn render_line(resp: &Response) -> String {
    match resp {
        Response::Classified { class, epoch } => format!("ok {class} epoch={epoch}\n"),
        Response::Pong => "ok pong\n".to_string(),
        Response::Stats(json) => format!("ok {json}\n"),
        Response::Info {
            dim,
            classes,
            features,
            epoch,
        } => format!("ok dim={dim} classes={classes} features={features} epoch={epoch}\n"),
        Response::Swapped { epoch } => format!("ok epoch={epoch}\n"),
        Response::ShuttingDown => "ok bye\n".to_string(),
        Response::Error(msg) => format!("err {}\n", msg.replace('\n', " ")),
    }
}

/// Parses one line-mode command.
///
/// # Errors
///
/// Returns a description of the malformation for the `err ...` reply.
pub fn parse_line(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "classify" => {
            if rest.is_empty() {
                return Err("classify needs comma-separated features".into());
            }
            // `f32::parse` happily accepts "NaN" and "inf", which would
            // otherwise flow into quantization — screen them out here.
            let features: Vec<f32> = rest
                .split(',')
                .map(|f| f.trim().parse::<f32>())
                .collect::<Result<_, _>>()
                .map_err(|_| "classify features must all be numeric".to_string())?;
            check_features_finite(&features)?;
            Ok(Request::Classify(features))
        }
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "info" => Ok(Request::Info),
        "swap" => {
            if rest.is_empty() {
                Err("swap needs a bundle path".into())
            } else {
                Ok(Request::Swap(rest.to_string()))
            }
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown command {other:?} (expected classify|ping|stats|info|swap|shutdown)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut frame = Vec::new();
        encode_request(&req, &mut frame);
        let mut cursor = frame.as_slice();
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_request(&payload).unwrap(), req);
        assert!(cursor.is_empty(), "frame must consume exactly its bytes");
    }

    fn roundtrip_response(resp: Response) {
        let mut frame = Vec::new();
        encode_response(&resp, &mut frame);
        let mut cursor = frame.as_slice();
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap());
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Classify(vec![0.25, -1.5, f32::MAX, 0.0]));
        roundtrip_request(Request::Classify(Vec::new()));
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Info);
        roundtrip_request(Request::Swap("/tmp/model v2.lehdc".into()));
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Classified { class: 7, epoch: 3 });
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Stats("{\"a\": 1}".into()));
        roundtrip_response(Response::Info {
            dim: 10_000,
            classes: 26,
            features: 784,
            epoch: 9,
        });
        roundtrip_response(Response::Swapped { epoch: 2 });
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Error("feature count mismatch".into()));
    }

    #[test]
    fn eof_at_frame_boundary_is_clean() {
        let mut payload = Vec::new();
        assert!(!read_frame(&mut [].as_slice(), &mut payload).unwrap());
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut frame = Vec::new();
        encode_request(&Request::Ping, &mut frame);
        let mut payload = Vec::new();
        // truncated payload
        let cut = &frame[..frame.len() - 1];
        assert!(read_frame(&mut { cut }, &mut payload).is_err());
        // truncated length prefix mid-way is also an error, not clean EOF
        assert!(read_frame(&mut &frame[..2], &mut payload).is_err());
        // oversized declared length
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice(), &mut payload).is_err());
        // zero-length frame
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut zero.as_slice(), &mut payload).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x01, 1]).is_err()); // count field cut short
        assert!(decode_request(&[0x01, 2, 0, 0, 0, 9]).is_err()); // byte count lies
        assert!(decode_request(&[0xEE]).is_err()); // unknown opcode
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[0x01, 1, 2]).is_err()); // short classified
        assert!(decode_response(&[0xEE]).is_err());
    }

    #[test]
    fn non_finite_features_are_rejected_in_both_dialects() {
        // Line mode: parse succeeds numerically but the values are unusable.
        for bad in ["classify NaN", "classify 1.0,inf", "classify -inf,0.5"] {
            let err = parse_line(bad).unwrap_err();
            assert!(err.contains("not finite"), "{bad}: {err}");
        }
        // Binary mode: a well-formed frame carrying a NaN/inf payload.
        for (idx, bad) in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY]
            .into_iter()
            .enumerate()
        {
            let mut features = vec![0.5f32; 4];
            features[idx] = bad;
            let mut frame = Vec::new();
            encode_request(&Request::Classify(features), &mut frame);
            let err = decode_request(&frame[4..]).unwrap_err();
            assert!(err.contains(&format!("feature {idx}")), "{err}");
            assert!(err.contains("not finite"), "{err}");
        }
        // Finite extremes stay accepted.
        assert!(parse_line("classify 3.4e38,-3.4e38").is_ok());
    }

    #[test]
    fn line_commands_parse() {
        assert_eq!(
            parse_line("classify 0.5, 1.0 ,-2\n").unwrap(),
            Request::Classify(vec![0.5, 1.0, -2.0])
        );
        assert_eq!(parse_line("ping").unwrap(), Request::Ping);
        assert_eq!(parse_line("stats").unwrap(), Request::Stats);
        assert_eq!(parse_line("info").unwrap(), Request::Info);
        assert_eq!(
            parse_line("swap /tmp/m.lehdc").unwrap(),
            Request::Swap("/tmp/m.lehdc".into())
        );
        assert_eq!(parse_line("shutdown").unwrap(), Request::Shutdown);
        assert!(parse_line("classify").is_err());
        assert!(parse_line("classify a,b").is_err());
        assert!(parse_line("swap").is_err());
        assert!(parse_line("frobnicate").is_err());
    }

    #[test]
    fn line_rendering_is_single_line() {
        for resp in [
            Response::Classified { class: 3, epoch: 1 },
            Response::Error("multi\nline".into()),
            Response::ShuttingDown,
        ] {
            let line = render_line(&resp);
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one newline in {line:?}");
        }
    }
}
