//! Error type for dataset construction and loading.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors raised when building, generating, or loading datasets.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetError {
    /// An I/O failure while reading a data file.
    Io(io::Error),
    /// A file was syntactically invalid for its format.
    Parse {
        /// What was being parsed (file or format).
        context: String,
        /// What went wrong.
        message: String,
    },
    /// A configuration value was outside its valid range.
    InvalidConfig(String),
    /// Features/labels were inconsistent with the declared shape.
    Shape(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "i/o error: {e}"),
            DatasetError::Parse { context, message } => {
                write!(f, "parse error in {context}: {message}")
            }
            DatasetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DatasetError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DatasetError::Parse {
            context: "foo.idx".into(),
            message: "bad magic".into(),
        };
        assert!(e.to_string().contains("foo.idx"));
        assert!(DatasetError::Shape("x".into()).to_string().contains("shape"));
        let io_err: DatasetError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(io_err.to_string().contains("gone"));
        assert!(Error::source(&io_err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
