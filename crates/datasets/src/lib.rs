#![warn(missing_docs)]

//! Dataset substrate for the LeHDC reproduction.
//!
//! The paper evaluates on MNIST, Fashion-MNIST, CIFAR-10, UCIHAR, ISOLET,
//! and PAMAP. Those corpora are not redistributable inside this repository,
//! so this crate provides two interchangeable sources:
//!
//! 1. **Synthetic benchmark profiles** ([`BenchmarkProfile`]): for each paper
//!    dataset, a class-conditional *multi-prototype Gaussian* generator with
//!    the dataset's feature count, class count and a difficulty calibration
//!    (sub-clusters per class, noise, samples per class) chosen so the
//!    *relative ordering* of the HDC training strategies matches the paper's
//!    Table 1. The mechanism that separates the strategies — overlapping,
//!    multi-modal class-conditional distributions that defeat centroid
//!    averaging but not discriminative training — is exactly what the
//!    generator produces.
//! 2. **Loaders** for real data when available: the IDX format used by
//!    MNIST/Fashion-MNIST ([`loader::idx`]) and numeric CSV
//!    ([`loader::csv`]), both yielding the same [`Dataset`] type, so real
//!    data drops into every experiment unchanged.
//!
//! # Example
//!
//! ```
//! use hdc_datasets::BenchmarkProfile;
//!
//! # fn main() -> Result<(), hdc_datasets::DatasetError> {
//! let data = BenchmarkProfile::isolet().scaled(0.02).generate(7)?;
//! assert_eq!(data.train.n_classes(), 26);
//! assert_eq!(data.train.n_features(), data.test.n_features());
//! # Ok(())
//! # }
//! ```

pub mod benchmarks;
pub mod cv;
pub mod dataset;
pub mod error;
pub mod loader;
pub mod normalize;
pub mod synthetic;

pub use benchmarks::BenchmarkProfile;
pub use dataset::{Dataset, TrainTest};
pub use error::DatasetError;
pub use normalize::MinMaxNormalizer;
pub use synthetic::SyntheticSpec;
