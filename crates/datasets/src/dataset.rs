//! The in-memory dataset container shared by every data source.

use crate::error::DatasetError;

/// A labeled classification dataset with flat row-major `f32` features.
///
/// # Examples
///
/// ```
/// use hdc_datasets::Dataset;
///
/// # fn main() -> Result<(), hdc_datasets::DatasetError> {
/// let ds = Dataset::new("toy", vec![0.0, 1.0, 1.0, 0.0], vec![0, 1], 2, 2)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.row(1), &[1.0, 0.0]);
/// assert_eq!(ds.label(1), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    features: Vec<f32>,
    labels: Vec<usize>,
    n_features: usize,
    n_classes: usize,
}

impl Dataset {
    /// Creates a dataset from flat row-major features and per-row labels.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Shape`] if the feature buffer is not
    /// `labels.len() × n_features`, any label is `>= n_classes`, the dataset
    /// is empty, or `n_features`/`n_classes` is zero.
    pub fn new(
        name: impl Into<String>,
        features: Vec<f32>,
        labels: Vec<usize>,
        n_features: usize,
        n_classes: usize,
    ) -> Result<Self, DatasetError> {
        if n_features == 0 || n_classes == 0 {
            return Err(DatasetError::Shape(
                "feature and class counts must be non-zero".into(),
            ));
        }
        if labels.is_empty() {
            return Err(DatasetError::Shape("dataset must not be empty".into()));
        }
        if features.len() != labels.len() * n_features {
            return Err(DatasetError::Shape(format!(
                "{} feature values cannot form {} rows of {} features",
                features.len(),
                labels.len(),
                n_features
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= n_classes) {
            return Err(DatasetError::Shape(format!(
                "label {bad} out of range for {n_classes} classes"
            )));
        }
        Ok(Dataset {
            name: name.into(),
            features,
            labels,
            n_features,
            n_classes,
        })
    }

    /// The dataset's human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples (never true for a constructed
    /// dataset, kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes `K`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.len(), "sample index out of range");
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels in sample order.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The flat row-major feature buffer.
    #[must_use]
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Mutable access to the flat feature buffer (for normalization).
    #[must_use]
    pub fn features_mut(&mut self) -> &mut [f32] {
        &mut self.features
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }

    /// Global `(min, max)` over all feature values.
    ///
    /// # Panics
    ///
    /// Never panics for a constructed dataset (it cannot be empty).
    #[must_use]
    pub fn value_range(&self) -> (f32, f32) {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in &self.features {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max)
    }

    /// Returns a new dataset containing the given sample indices (in order).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Shape`] if `indices` is empty or any index is
    /// out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset, DatasetError> {
        if indices.is_empty() {
            return Err(DatasetError::Shape("subset must not be empty".into()));
        }
        let mut features = Vec::with_capacity(indices.len() * self.n_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DatasetError::Shape(format!(
                    "subset index {i} out of range for {} samples",
                    self.len()
                )));
            }
            features.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        Dataset::new(
            self.name.clone(),
            features,
            labels,
            self.n_features,
            self.n_classes,
        )
    }
}

/// A train/test pair from the same distribution, as every experiment
/// consumes it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTest {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
}

impl TrainTest {
    /// Creates a pair, validating that the splits agree on shape.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Shape`] if feature or class counts differ.
    pub fn new(train: Dataset, test: Dataset) -> Result<Self, DatasetError> {
        if train.n_features() != test.n_features() || train.n_classes() != test.n_classes() {
            return Err(DatasetError::Shape(format!(
                "train ({}x{} classes) and test ({}x{} classes) disagree",
                train.n_features(),
                train.n_classes(),
                test.n_features(),
                test.n_classes()
            )));
        }
        Ok(TrainTest { train, test })
    }

    /// Dataset name (taken from the training split).
    #[must_use]
    pub fn name(&self) -> &str {
        self.train.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![0.0, 0.1, 1.0, 0.9, 0.5, 0.4],
            vec![0, 1, 0],
            2,
            2,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        assert!(Dataset::new("x", vec![0.0; 4], vec![0, 1], 2, 2).is_ok());
        assert!(Dataset::new("x", vec![0.0; 5], vec![0, 1], 2, 2).is_err());
        assert!(Dataset::new("x", vec![0.0; 4], vec![0, 2], 2, 2).is_err());
        assert!(Dataset::new("x", vec![], vec![], 2, 2).is_err());
        assert!(Dataset::new("x", vec![0.0; 4], vec![0, 1], 0, 2).is_err());
    }

    #[test]
    fn accessors_agree() {
        let ds = toy();
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.row(2), &[0.5, 0.4]);
        assert_eq!(ds.label(2), 0);
        assert_eq!(ds.class_counts(), vec![2, 1]);
        assert_eq!(ds.value_range(), (0.0, 1.0));
        assert_eq!(ds.name(), "toy");
    }

    #[test]
    fn subset_selects_rows_in_order() {
        let ds = toy();
        let sub = ds.subset(&[2, 0]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.row(0), &[0.5, 0.4]);
        assert_eq!(sub.labels(), &[0, 0]);
        assert!(ds.subset(&[]).is_err());
        assert!(ds.subset(&[3]).is_err());
    }

    #[test]
    fn train_test_validates_consistency() {
        let a = toy();
        let b = Dataset::new("toy", vec![0.0; 3], vec![0, 1, 0], 1, 2).unwrap();
        assert!(TrainTest::new(a.clone(), b).is_err());
        let pair = TrainTest::new(a.clone(), a).unwrap();
        assert_eq!(pair.name(), "toy");
    }
}
