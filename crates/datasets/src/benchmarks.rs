//! The six benchmark profiles of the paper's evaluation (Sec. 5).
//!
//! Each profile carries the real dataset's feature count, class count, and
//! split sizes, plus a difficulty calibration (`prototypes_per_class`,
//! `noise`, `separation`) for the synthetic generator in
//! [`crate::synthetic`]. The calibrations were tuned so that the *relative*
//! Table 1 behaviour holds: baseline < multi-model < retraining < LeHDC,
//! with CIFAR-10 the hardest profile and PAMAP the easiest, and multi-model
//! collapsing on the many-classes/few-samples profiles (ISOLET, CIFAR-10).

use crate::dataset::TrainTest;
use crate::error::DatasetError;
use crate::synthetic::SyntheticSpec;

/// One of the paper's six benchmarks, expressed as a synthetic profile.
///
/// # Examples
///
/// ```
/// use hdc_datasets::BenchmarkProfile;
///
/// # fn main() -> Result<(), hdc_datasets::DatasetError> {
/// // Paper-shape Fashion-MNIST, scaled to 2% of its sample counts.
/// let profile = BenchmarkProfile::fashion_mnist().scaled(0.02);
/// let data = profile.generate(42)?;
/// assert_eq!(data.train.n_features(), 784);
/// assert_eq!(data.train.len(), 1200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    name: &'static str,
    n_features: usize,
    n_classes: usize,
    n_train: usize,
    n_test: usize,
    prototypes_per_class: usize,
    noise: f32,
    separation: f32,
    cluster_spread: f32,
}

impl BenchmarkProfile {
    /// MNIST: 784 features, 10 classes, 60k/10k (paper Table 1: baseline
    /// 80.36 → LeHDC 94.89).
    #[must_use]
    pub fn mnist() -> Self {
        BenchmarkProfile {
            name: "MNIST",
            n_features: 784,
            n_classes: 10,
            n_train: 60_000,
            n_test: 10_000,
            prototypes_per_class: 2,
            noise: 0.30,
            separation: 0.50,
            cluster_spread: 0.4,
        }
    }

    /// Fashion-MNIST: 784 features, 10 classes, 60k/10k (baseline 68.04 →
    /// LeHDC 87.11).
    #[must_use]
    pub fn fashion_mnist() -> Self {
        BenchmarkProfile {
            name: "Fashion-MNIST",
            n_features: 784,
            n_classes: 10,
            n_train: 60_000,
            n_test: 10_000,
            prototypes_per_class: 3,
            noise: 0.32,
            separation: 0.50,
            cluster_spread: 0.4,
        }
    }

    /// CIFAR-10: 3072 features, 10 classes, 50k/10k — the hardest profile
    /// (baseline 29.55 → LeHDC 46.10).
    #[must_use]
    pub fn cifar10() -> Self {
        BenchmarkProfile {
            name: "CIFAR-10",
            n_features: 3072,
            n_classes: 10,
            n_train: 50_000,
            n_test: 10_000,
            prototypes_per_class: 6,
            noise: 0.48,
            separation: 0.30,
            cluster_spread: 0.55,
        }
    }

    /// UCIHAR (smartphone activity): 561 features, 6 classes, 7352/2947
    /// (baseline 82.46 → LeHDC 94.74).
    #[must_use]
    pub fn ucihar() -> Self {
        BenchmarkProfile {
            name: "UCIHAR",
            n_features: 561,
            n_classes: 6,
            n_train: 7_352,
            n_test: 2_947,
            prototypes_per_class: 2,
            noise: 0.30,
            separation: 0.46,
            cluster_spread: 0.35,
        }
    }

    /// ISOLET (spoken letters): 617 features, 26 classes, 6238/1559
    /// (baseline 87.42 → LeHDC 95.23). The many-classes/few-samples
    /// combination is what starves multi-model HDC here.
    #[must_use]
    pub fn isolet() -> Self {
        BenchmarkProfile {
            name: "ISOLET",
            n_features: 617,
            n_classes: 26,
            n_train: 6_238,
            n_test: 1_559,
            prototypes_per_class: 2,
            noise: 0.16,
            separation: 0.50,
            cluster_spread: 0.3,
        }
    }

    /// PAMAP (physical activity monitoring): 75 features, 5 classes — the
    /// easiest profile (baseline 77.66 → LeHDC 99.55).
    #[must_use]
    pub fn pamap() -> Self {
        BenchmarkProfile {
            name: "PAMAP",
            n_features: 75,
            n_classes: 5,
            n_train: 20_000,
            n_test: 5_000,
            prototypes_per_class: 3,
            noise: 0.12,
            separation: 0.52,
            cluster_spread: 0.6,
        }
    }

    /// All six paper benchmarks in Table 1 order.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![
            Self::mnist(),
            Self::fashion_mnist(),
            Self::cifar10(),
            Self::ucihar(),
            Self::isolet(),
            Self::pamap(),
        ]
    }

    /// The benchmark's name as printed in the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of input features `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes `K`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Training-set size at the current scale.
    #[must_use]
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Test-set size at the current scale.
    #[must_use]
    pub fn n_test(&self) -> usize {
        self.n_test
    }

    /// Scales both split sizes by `fraction` (keeping at least two samples
    /// per class in each split).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not a positive finite number.
    #[must_use]
    pub fn scaled(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0,
            "scale fraction must be positive"
        );
        let floor = 2 * self.n_classes;
        self.n_train = ((self.n_train as f64 * fraction) as usize).max(floor);
        self.n_test = ((self.n_test as f64 * fraction) as usize).max(floor);
        self
    }

    /// Overrides the feature count (for fast tests and quick experiment
    /// modes). The noise level is rescaled by `√(new/old)` so the
    /// class-distance signal-to-noise ratio — which grows like `√N` —
    /// stays at the profile's calibrated difficulty.
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0`.
    #[must_use]
    pub fn with_features(mut self, n_features: usize) -> Self {
        assert!(n_features > 0, "feature count must be non-zero");
        self.noise *= (n_features as f32 / self.n_features as f32).sqrt();
        self.n_features = n_features;
        self
    }

    /// Overrides the split sizes exactly.
    ///
    /// # Panics
    ///
    /// Panics if either size is smaller than the class count.
    #[must_use]
    pub fn with_samples(mut self, n_train: usize, n_test: usize) -> Self {
        assert!(
            n_train >= self.n_classes && n_test >= self.n_classes,
            "splits must hold at least one sample per class"
        );
        self.n_train = n_train;
        self.n_test = n_test;
        self
    }

    /// A laptop-scale preset: features capped at 128, ~100 training and ~30
    /// test samples per class. Used by unit tests and `--quick` experiment
    /// runs.
    #[must_use]
    pub fn quick(self) -> Self {
        let k = self.n_classes;
        let features = self.n_features.min(128);
        self.with_features(features).with_samples(100 * k, 30 * k)
    }

    /// Converts the profile into the underlying synthetic spec.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the (possibly overridden)
    /// shape is degenerate.
    pub fn spec(&self) -> Result<SyntheticSpec, DatasetError> {
        SyntheticSpec::builder(self.name, self.n_features, self.n_classes)
            .prototypes_per_class(self.prototypes_per_class)
            .noise(self.noise)
            .separation(self.separation)
            .cluster_spread(self.cluster_spread)
            .train_samples(self.n_train)
            .test_samples(self.n_test)
            .build()
    }

    /// Generates a train/test pair from this profile.
    ///
    /// # Errors
    ///
    /// See [`spec`](Self::spec) and [`SyntheticSpec::generate`].
    pub fn generate(&self, seed: u64) -> Result<TrainTest, DatasetError> {
        self.spec()?.generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_paper_shapes() {
        let shapes: Vec<(&str, usize, usize, usize, usize)> = BenchmarkProfile::all()
            .iter()
            .map(|p| (p.name(), p.n_features(), p.n_classes(), p.n_train(), p.n_test()))
            .collect();
        assert_eq!(shapes[0], ("MNIST", 784, 10, 60_000, 10_000));
        assert_eq!(shapes[1], ("Fashion-MNIST", 784, 10, 60_000, 10_000));
        assert_eq!(shapes[2], ("CIFAR-10", 3072, 10, 50_000, 10_000));
        assert_eq!(shapes[3], ("UCIHAR", 561, 6, 7_352, 2_947));
        assert_eq!(shapes[4], ("ISOLET", 617, 26, 6_238, 1_559));
        assert_eq!(shapes[5], ("PAMAP", 75, 5, 20_000, 5_000));
    }

    #[test]
    fn scaled_respects_class_floor() {
        let p = BenchmarkProfile::isolet().scaled(1e-9);
        assert_eq!(p.n_train(), 52);
        assert_eq!(p.n_test(), 52);
    }

    #[test]
    fn quick_profiles_generate_fast_and_balanced() {
        for profile in BenchmarkProfile::all() {
            let quick = profile.quick();
            assert!(quick.n_features() <= 128);
            let data = quick.generate(1).unwrap();
            let counts = data.train.class_counts();
            assert!(counts.iter().all(|&c| c == counts[0]), "{}", quick.name());
        }
    }

    #[test]
    fn generation_is_seed_reproducible() {
        let p = BenchmarkProfile::pamap().quick();
        assert_eq!(p.generate(5).unwrap().train, p.generate(5).unwrap().train);
        assert_ne!(p.generate(5).unwrap().train, p.generate(6).unwrap().train);
    }

    #[test]
    fn overrides_apply() {
        let p = BenchmarkProfile::mnist().with_features(10).with_samples(100, 50);
        assert_eq!(p.n_features(), 10);
        assert_eq!((p.n_train(), p.n_test()), (100, 50));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        let _ = BenchmarkProfile::mnist().scaled(0.0);
    }
}
