//! Class-conditional multi-prototype Gaussian data generator.

use testkit::{Normal, Rng, Xoshiro256pp};

use crate::dataset::{Dataset, TrainTest};
use crate::error::DatasetError;

/// Specification of a synthetic classification problem.
///
/// Each class owns `prototypes_per_class` independent *sub-cluster* centers
/// drawn uniformly in `[0, 1]^N`; a sample picks one of its class's centers
/// uniformly and adds isotropic Gaussian noise, clamped back to `[0, 1]`.
///
/// The knobs map directly onto what separates HDC training strategies:
///
/// - `prototypes_per_class > 1` makes classes **multi-modal**, which defeats
///   the centroid averaging of baseline HDC (the bundled class hypervector
///   sits between sub-clusters) while a discriminatively trained boundary
///   (LeHDC) is unaffected in principle;
/// - `separation < 1` blends every class's `p`-th prototype with a *shared*
///   background prototype `base_p`, so classes differ only in a
///   `separation`-sized fraction of the signal. Hamming-distance inference
///   weights all dimensions equally and is confused by the shared
///   background; a discriminative learner suppresses it — this models the
///   class-correlated structure of hard image datasets like CIFAR-10;
/// - `noise` controls raw class overlap (harder for everyone);
/// - small `n_train` with many classes starves stochastic strategies like
///   multi-model HDC, reproducing the paper's observation that multi-model
///   can fall below the baseline on ISOLET/CIFAR-10.
///
/// # Examples
///
/// ```
/// use hdc_datasets::SyntheticSpec;
///
/// # fn main() -> Result<(), hdc_datasets::DatasetError> {
/// let spec = SyntheticSpec::builder("demo", 20, 4)
///     .prototypes_per_class(2)
///     .noise(0.15)
///     .train_samples(200)
///     .test_samples(80)
///     .build()?;
/// let data = spec.generate(1)?;
/// assert_eq!(data.train.len(), 200);
/// assert_eq!(data.test.len(), 80);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    name: String,
    n_features: usize,
    n_classes: usize,
    prototypes_per_class: usize,
    noise: f32,
    separation: f32,
    cluster_spread: f32,
    n_train: usize,
    n_test: usize,
}

impl SyntheticSpec {
    /// Starts building a spec with mandatory shape parameters.
    #[must_use]
    pub fn builder(
        name: impl Into<String>,
        n_features: usize,
        n_classes: usize,
    ) -> SyntheticSpecBuilder {
        SyntheticSpecBuilder {
            name: name.into(),
            n_features,
            n_classes,
            prototypes_per_class: 1,
            noise: 0.1,
            separation: 1.0,
            cluster_spread: 1.0,
            n_train: 1000,
            n_test: 200,
        }
    }

    /// The problem name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of features `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes `K`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Sub-clusters per class.
    #[must_use]
    pub fn prototypes_per_class(&self) -> usize {
        self.prototypes_per_class
    }

    /// Gaussian noise standard deviation.
    #[must_use]
    pub fn noise(&self) -> f32 {
        self.noise
    }

    /// Class-specific fraction of the prototype signal (1 = fully
    /// class-specific, → 0 = classes share almost everything).
    #[must_use]
    pub fn separation(&self) -> f32 {
        self.separation
    }

    /// How different a class's sub-clusters are from each other (1 = fully
    /// independent lumps, → 0 = one blob). Low values model real classes,
    /// whose variations are correlated — the regime where multi-model HDC's
    /// extra prototypes buy little.
    #[must_use]
    pub fn cluster_spread(&self) -> f32 {
        self.cluster_spread
    }

    /// Training-set size.
    #[must_use]
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Test-set size.
    #[must_use]
    pub fn n_test(&self) -> usize {
        self.n_test
    }

    /// Generates a train/test pair.
    ///
    /// The class prototypes depend only on `(spec, seed)`; train and test
    /// samples are drawn from the same distribution with independent noise.
    ///
    /// # Errors
    ///
    /// Propagates [`DatasetError::Shape`] from dataset assembly (cannot occur
    /// for a validated spec).
    pub fn generate(&self, seed: u64) -> Result<TrainTest, DatasetError> {
        let mut proto_rng = Xoshiro256pp::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        // Shared background prototypes, one per sub-cluster slot.
        let base: Vec<Vec<f32>> = (0..self.prototypes_per_class)
            .map(|_| {
                (0..self.n_features)
                    .map(|_| proto_rng.random::<f32>())
                    .collect()
            })
            .collect();
        let sep = self.separation;
        let cs = self.cluster_spread;
        // Per-class centers: the correlated core every sub-cluster shares.
        let centers: Vec<Vec<f32>> = (0..self.n_classes)
            .map(|_| {
                (0..self.n_features)
                    .map(|_| proto_rng.random::<f32>())
                    .collect()
            })
            .collect();
        let n_protos = self.n_classes * self.prototypes_per_class;
        let prototypes: Vec<Vec<f32>> = (0..n_protos)
            .map(|idx| {
                let k = idx / self.prototypes_per_class;
                let p = idx % self.prototypes_per_class;
                (0..self.n_features)
                    .map(|f| {
                        let unique: f32 = proto_rng.random();
                        let class_part = (1.0 - cs) * centers[k][f] + cs * unique;
                        (1.0 - sep) * base[p][f] + sep * class_part
                    })
                    .collect()
            })
            .collect();

        let train = self.sample_split(
            &prototypes,
            self.n_train,
            Xoshiro256pp::seed_from_u64(seed.wrapping_add(1)),
        )?;
        let test = self.sample_split(
            &prototypes,
            self.n_test,
            Xoshiro256pp::seed_from_u64(seed.wrapping_add(2)),
        )?;
        TrainTest::new(train, test)
    }

    fn sample_split(
        &self,
        prototypes: &[Vec<f32>],
        n_samples: usize,
        mut rng: Xoshiro256pp,
    ) -> Result<Dataset, DatasetError> {
        let mut features = Vec::with_capacity(n_samples * self.n_features);
        let mut labels = Vec::with_capacity(n_samples);
        let mut gauss = Normal::standard();
        for i in 0..n_samples {
            // Round-robin over classes keeps the splits balanced.
            let class = i % self.n_classes;
            let proto_idx =
                class * self.prototypes_per_class + rng.random_range(0..self.prototypes_per_class);
            let proto = &prototypes[proto_idx];
            for &center in proto {
                let v = center + self.noise * gauss.sample_f32(&mut rng);
                features.push(v.clamp(0.0, 1.0));
            }
            labels.push(class);
        }
        Dataset::new(
            self.name.clone(),
            features,
            labels,
            self.n_features,
            self.n_classes,
        )
    }
}

/// Builder for [`SyntheticSpec`].
#[derive(Debug, Clone)]
pub struct SyntheticSpecBuilder {
    name: String,
    n_features: usize,
    n_classes: usize,
    prototypes_per_class: usize,
    noise: f32,
    separation: f32,
    cluster_spread: f32,
    n_train: usize,
    n_test: usize,
}

impl SyntheticSpecBuilder {
    /// Sets the number of sub-clusters per class (default 1).
    #[must_use]
    pub fn prototypes_per_class(mut self, p: usize) -> Self {
        self.prototypes_per_class = p;
        self
    }

    /// Sets the Gaussian noise standard deviation (default 0.1).
    #[must_use]
    pub fn noise(mut self, sigma: f32) -> Self {
        self.noise = sigma;
        self
    }

    /// Sets the class-specific signal fraction (default 1.0).
    #[must_use]
    pub fn separation(mut self, separation: f32) -> Self {
        self.separation = separation;
        self
    }

    /// Sets the sub-cluster independence (default 1.0).
    #[must_use]
    pub fn cluster_spread(mut self, cluster_spread: f32) -> Self {
        self.cluster_spread = cluster_spread;
        self
    }

    /// Sets the training-set size (default 1000).
    #[must_use]
    pub fn train_samples(mut self, n: usize) -> Self {
        self.n_train = n;
        self
    }

    /// Sets the test-set size (default 200).
    #[must_use]
    pub fn test_samples(mut self, n: usize) -> Self {
        self.n_test = n;
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if any count is zero, the
    /// noise is negative or non-finite, or a split is smaller than the class
    /// count (it could not be class-balanced).
    pub fn build(self) -> Result<SyntheticSpec, DatasetError> {
        if self.n_features == 0 || self.n_classes == 0 || self.prototypes_per_class == 0 {
            return Err(DatasetError::InvalidConfig(
                "features, classes, and prototypes per class must be non-zero".into(),
            ));
        }
        if !self.noise.is_finite() || self.noise < 0.0 {
            return Err(DatasetError::InvalidConfig(format!(
                "noise must be finite and non-negative, got {}",
                self.noise
            )));
        }
        if !self.separation.is_finite() || !(0.0..=1.0).contains(&self.separation)
            || self.separation == 0.0
        {
            return Err(DatasetError::InvalidConfig(format!(
                "separation must be in (0, 1], got {}",
                self.separation
            )));
        }
        if !self.cluster_spread.is_finite() || !(0.0..=1.0).contains(&self.cluster_spread) {
            return Err(DatasetError::InvalidConfig(format!(
                "cluster_spread must be in [0, 1], got {}",
                self.cluster_spread
            )));
        }
        if self.n_train < self.n_classes || self.n_test < self.n_classes {
            return Err(DatasetError::InvalidConfig(format!(
                "splits ({} train / {} test) must hold at least one sample per class ({})",
                self.n_train, self.n_test, self.n_classes
            )));
        }
        Ok(SyntheticSpec {
            name: self.name,
            n_features: self.n_features,
            n_classes: self.n_classes,
            prototypes_per_class: self.prototypes_per_class,
            noise: self.noise,
            separation: self.separation,
            cluster_spread: self.cluster_spread,
            n_train: self.n_train,
            n_test: self.n_test,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::builder("t", 10, 3)
            .prototypes_per_class(2)
            .noise(0.05)
            .train_samples(90)
            .test_samples(30)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(SyntheticSpec::builder("x", 0, 2).build().is_err());
        assert!(SyntheticSpec::builder("x", 2, 0).build().is_err());
        assert!(SyntheticSpec::builder("x", 2, 2)
            .prototypes_per_class(0)
            .build()
            .is_err());
        assert!(SyntheticSpec::builder("x", 2, 2).noise(-1.0).build().is_err());
        assert!(SyntheticSpec::builder("x", 2, 5)
            .train_samples(3)
            .build()
            .is_err());
    }

    #[test]
    fn generation_is_reproducible() {
        let s = spec();
        let a = s.generate(9).unwrap();
        let b = s.generate(9).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = s.generate(10).unwrap();
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn splits_are_class_balanced() {
        let data = spec().generate(4).unwrap();
        assert_eq!(data.train.class_counts(), vec![30, 30, 30]);
        assert_eq!(data.test.class_counts(), vec![10, 10, 10]);
    }

    #[test]
    fn features_stay_in_unit_interval() {
        let data = SyntheticSpec::builder("t", 8, 2)
            .noise(2.0) // extreme noise exercises the clamp
            .train_samples(50)
            .test_samples(10)
            .build()
            .unwrap()
            .generate(1)
            .unwrap();
        let (min, max) = data.train.value_range();
        assert!(min >= 0.0 && max <= 1.0);
    }

    #[test]
    fn low_noise_single_prototype_is_nearly_separable() {
        // Nearest-prototype error should be almost zero at tiny noise.
        let s = SyntheticSpec::builder("t", 16, 4)
            .noise(0.01)
            .train_samples(80)
            .test_samples(40)
            .build()
            .unwrap();
        let data = s.generate(2).unwrap();
        // 1-NN using the train set classifies the test set.
        let mut correct = 0;
        for i in 0..data.test.len() {
            let q = data.test.row(i);
            let mut best = (f32::INFINITY, 0usize);
            for j in 0..data.train.len() {
                let d: f32 = q
                    .iter()
                    .zip(data.train.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best.0 {
                    best = (d, data.train.label(j));
                }
            }
            if best.1 == data.test.label(i) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / data.test.len() as f64 > 0.95,
            "1-NN accuracy {correct}/{}",
            data.test.len()
        );
    }

    #[test]
    fn low_separation_increases_cross_class_similarity() {
        // With separation → 0 classes collapse onto the shared background.
        fn mean_cross_class_distance(sep: f32) -> f64 {
            let s = SyntheticSpec::builder("t", 32, 4)
                .separation(sep)
                .noise(0.0)
                .train_samples(40)
                .test_samples(8)
                .build()
                .unwrap();
            let data = s.generate(3).unwrap();
            let mut total = 0.0f64;
            let mut pairs = 0u64;
            for i in 0..data.train.len() {
                for j in 0..data.train.len() {
                    if data.train.label(i) != data.train.label(j) {
                        let d: f32 = data
                            .train
                            .row(i)
                            .iter()
                            .zip(data.train.row(j))
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        total += f64::from(d);
                        pairs += 1;
                    }
                }
            }
            total / pairs as f64
        }
        let tight = mean_cross_class_distance(0.2);
        let loose = mean_cross_class_distance(1.0);
        assert!(
            tight < loose / 2.0,
            "separation 0.2 should compress cross-class distance: {tight} vs {loose}"
        );
    }

    #[test]
    fn builder_rejects_bad_separation() {
        assert!(SyntheticSpec::builder("x", 2, 2)
            .separation(0.0)
            .build()
            .is_err());
        assert!(SyntheticSpec::builder("x", 2, 2)
            .separation(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn gaussian_source_has_sane_moments() {
        let mut g = Normal::standard();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| g.sample_f32(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn accessors_report_spec() {
        let s = spec();
        assert_eq!(s.name(), "t");
        assert_eq!(s.n_features(), 10);
        assert_eq!(s.n_classes(), 3);
        assert_eq!(s.prototypes_per_class(), 2);
        assert_eq!(s.noise(), 0.05);
        assert_eq!((s.n_train(), s.n_test()), (90, 30));
    }
}
