//! IDX file loader — the binary format of MNIST and Fashion-MNIST.
//!
//! An IDX file starts with a 4-byte magic (`0x00 0x00 <dtype> <ndim>`),
//! followed by `ndim` big-endian `u32` dimension sizes and the raw data.
//! This loader supports the unsigned-byte dtype (`0x08`) used by the MNIST
//! family.

use std::fs;
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::DatasetError;

const DTYPE_U8: u8 = 0x08;

/// A parsed IDX tensor of unsigned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxTensor {
    /// Dimension sizes, outermost first.
    pub dims: Vec<usize>,
    /// Raw values in row-major order.
    pub data: Vec<u8>,
}

/// Parses an IDX byte buffer.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] if the magic, dtype, dimensionality, or
/// payload length is invalid.
pub fn parse_idx(bytes: &[u8], context: &str) -> Result<IdxTensor, DatasetError> {
    let parse_err = |message: String| DatasetError::Parse {
        context: context.to_string(),
        message,
    };
    if bytes.len() < 4 {
        return Err(parse_err("file shorter than the 4-byte magic".into()));
    }
    if bytes[0] != 0 || bytes[1] != 0 {
        return Err(parse_err(format!(
            "bad magic prefix {:02x}{:02x}",
            bytes[0], bytes[1]
        )));
    }
    if bytes[2] != DTYPE_U8 {
        return Err(parse_err(format!(
            "unsupported dtype 0x{:02x} (only u8/0x08 is supported)",
            bytes[2]
        )));
    }
    let ndim = bytes[3] as usize;
    if ndim == 0 || ndim > 4 {
        return Err(parse_err(format!("unsupported dimensionality {ndim}")));
    }
    let header = 4 + 4 * ndim;
    if bytes.len() < header {
        return Err(parse_err("file truncated inside the dimension list".into()));
    }
    let mut dims = Vec::with_capacity(ndim);
    for d in 0..ndim {
        let off = 4 + 4 * d;
        let size = u32::from_be_bytes([
            bytes[off],
            bytes[off + 1],
            bytes[off + 2],
            bytes[off + 3],
        ]) as usize;
        dims.push(size);
    }
    let expected: usize = dims.iter().product();
    let data = &bytes[header..];
    if data.len() != expected {
        return Err(parse_err(format!(
            "payload holds {} bytes but dimensions {:?} require {expected}",
            data.len(),
            dims
        )));
    }
    Ok(IdxTensor {
        dims,
        data: data.to_vec(),
    })
}

/// Reads an IDX file from disk.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on read failure or [`DatasetError::Parse`]
/// on format errors.
pub fn read_idx(path: &Path) -> Result<IdxTensor, DatasetError> {
    let bytes = fs::read(path)?;
    parse_idx(&bytes, &path.display().to_string())
}

/// Loads an MNIST-style (images, labels) IDX pair into a [`Dataset`], with
/// pixel values scaled into `[0, 1]`.
///
/// # Errors
///
/// Returns a [`DatasetError`] if either file is unreadable or malformed, if
/// the sample counts disagree, or if any label is `>= n_classes`.
pub fn load_mnist_like(
    name: &str,
    images_path: &Path,
    labels_path: &Path,
    n_classes: usize,
) -> Result<Dataset, DatasetError> {
    let images = read_idx(images_path)?;
    let labels = read_idx(labels_path)?;
    if images.dims.len() < 2 {
        return Err(DatasetError::Parse {
            context: images_path.display().to_string(),
            message: format!("images need >= 2 dimensions, got {:?}", images.dims),
        });
    }
    if labels.dims.len() != 1 {
        return Err(DatasetError::Parse {
            context: labels_path.display().to_string(),
            message: format!("labels need exactly 1 dimension, got {:?}", labels.dims),
        });
    }
    let n = images.dims[0];
    if labels.dims[0] != n {
        return Err(DatasetError::Shape(format!(
            "{n} images but {} labels",
            labels.dims[0]
        )));
    }
    let n_features: usize = images.dims[1..].iter().product();
    let features: Vec<f32> = images.data.iter().map(|&b| f32::from(b) / 255.0).collect();
    let labels: Vec<usize> = labels.data.iter().map(|&b| b as usize).collect();
    Dataset::new(name, features, labels, n_features, n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a valid IDX byte buffer for the given dims and payload.
    fn idx_bytes(dims: &[u32], payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0, 0, DTYPE_U8, dims.len() as u8];
        for &d in dims {
            out.extend_from_slice(&d.to_be_bytes());
        }
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn parses_a_well_formed_tensor() {
        let bytes = idx_bytes(&[2, 2, 2], &[1, 2, 3, 4, 5, 6, 7, 8]);
        let t = parse_idx(&bytes, "test").unwrap();
        assert_eq!(t.dims, vec![2, 2, 2]);
        assert_eq!(t.data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_idx(&[], "t").is_err());
        assert!(parse_idx(&[1, 0, DTYPE_U8, 1], "t").is_err()); // bad magic
        assert!(parse_idx(&[0, 0, 0x0D, 1], "t").is_err()); // float dtype
        assert!(parse_idx(&[0, 0, DTYPE_U8, 0], "t").is_err()); // 0-dim
        assert!(parse_idx(&[0, 0, DTYPE_U8, 2, 0, 0, 0, 1], "t").is_err()); // truncated dims
        let short = idx_bytes(&[3], &[1, 2]); // payload too short
        assert!(parse_idx(&short, "t").is_err());
    }

    #[test]
    fn load_mnist_like_roundtrip() {
        let dir = std::env::temp_dir().join("lehdc_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("images.idx");
        let lbl_path = dir.join("labels.idx");
        // 3 images of 2x2 pixels
        std::fs::write(
            &img_path,
            idx_bytes(&[3, 2, 2], &[0, 255, 128, 64, 10, 20, 30, 40, 0, 0, 0, 0]),
        )
        .unwrap();
        std::fs::write(&lbl_path, idx_bytes(&[3], &[0, 1, 2])).unwrap();

        let ds = load_mnist_like("mini", &img_path, &lbl_path, 3).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_features(), 4);
        assert_eq!(ds.labels(), &[0, 1, 2]);
        assert_eq!(ds.row(0)[1], 1.0);
        assert!((ds.row(0)[2] - 128.0 / 255.0).abs() < 1e-6);

        // mismatched counts are rejected
        std::fs::write(&lbl_path, idx_bytes(&[2], &[0, 1])).unwrap();
        assert!(load_mnist_like("mini", &img_path, &lbl_path, 3).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_idx(Path::new("/nonexistent/lehdc.idx")).unwrap_err();
        assert!(matches!(err, DatasetError::Io(_)));
    }
}
