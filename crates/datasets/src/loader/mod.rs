//! Loaders for on-disk dataset formats.
//!
//! These exist so the synthetic benchmark profiles can be swapped for real
//! data without touching any experiment code: both loaders produce the same
//! [`Dataset`](crate::Dataset) type the generators do.

pub mod csv;
pub mod idx;
