//! Numeric CSV loader for UCI-style tabular datasets (UCIHAR, ISOLET,
//! PAMAP).

use std::fs;
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::DatasetError;

/// Which column of each CSV row holds the integer class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelColumn {
    /// The first column is the label.
    First,
    /// The last column is the label.
    Last,
}

/// Parses numeric CSV text into a [`Dataset`].
///
/// Rules: one sample per non-empty line; fields separated by commas;
/// everything is `f32` except the label column, which must be a
/// non-negative integer; a single leading header line is skipped if its
/// label field does not parse as a number. The class count is
/// `max(label) + 1` unless `n_classes` pins it.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] for malformed fields or ragged rows and
/// [`DatasetError::Shape`] for label/class inconsistencies.
pub fn parse_csv(
    text: &str,
    name: &str,
    label_column: LabelColumn,
    n_classes: Option<usize>,
) -> Result<Dataset, DatasetError> {
    let parse_err = |line: usize, message: String| DatasetError::Parse {
        context: format!("{name}:{line}"),
        message,
    };
    let mut features: Vec<f32> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut n_features: Option<usize> = None;
    let mut first_data_line = true;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(parse_err(
                lineno + 1,
                "each row needs a label and at least one feature".into(),
            ));
        }
        let (label_field, feature_fields): (&str, &[&str]) = match label_column {
            LabelColumn::First => (fields[0], &fields[1..]),
            LabelColumn::Last => (fields[fields.len() - 1], &fields[..fields.len() - 1]),
        };
        let label = match label_field.parse::<usize>() {
            Ok(v) => v,
            Err(_) if first_data_line => {
                // Treat an unparsable first line as a header.
                first_data_line = false;
                continue;
            }
            Err(_) => {
                return Err(parse_err(
                    lineno + 1,
                    format!("label field {label_field:?} is not a non-negative integer"),
                ));
            }
        };
        first_data_line = false;
        match n_features {
            None => n_features = Some(feature_fields.len()),
            Some(n) if n != feature_fields.len() => {
                return Err(parse_err(
                    lineno + 1,
                    format!("expected {n} features, found {}", feature_fields.len()),
                ));
            }
            Some(_) => {}
        }
        for field in feature_fields {
            let v = field.parse::<f32>().map_err(|_| {
                parse_err(lineno + 1, format!("feature field {field:?} is not numeric"))
            })?;
            features.push(v);
        }
        labels.push(label);
    }

    let n_features = n_features
        .ok_or_else(|| DatasetError::Shape(format!("{name}: no data rows found")))?;
    let k = match n_classes {
        Some(k) => k,
        None => labels.iter().copied().max().unwrap_or(0) + 1,
    };
    Dataset::new(name, features, labels, n_features, k)
}

/// Reads and parses a numeric CSV file.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on read failure, otherwise as
/// [`parse_csv`].
pub fn load_csv(
    path: &Path,
    label_column: LabelColumn,
    n_classes: Option<usize>,
) -> Result<Dataset, DatasetError> {
    let text = fs::read_to_string(path)?;
    parse_csv(
        &text,
        &path.display().to_string(),
        label_column,
        n_classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_label_first_csv() {
        let ds = parse_csv("0,1.5,2.5\n1,3.0,4.0\n", "t", LabelColumn::First, None).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.row(0), &[1.5, 2.5]);
        assert_eq!(ds.labels(), &[0, 1]);
    }

    #[test]
    fn parses_label_last_csv_with_header() {
        let text = "f1,f2,class\n0.1,0.2,1\n0.3,0.4,0\n";
        let ds = parse_csv(text, "t", LabelColumn::Last, Some(3)).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.labels(), &[1, 0]);
    }

    #[test]
    fn skips_blank_lines() {
        let ds = parse_csv("\n0,1.0\n\n1,2.0\n\n", "t", LabelColumn::First, None).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_csv("0\n", "t", LabelColumn::First, None).is_err()); // no features
        assert!(parse_csv("0,1.0\n1,2.0,3.0\n", "t", LabelColumn::First, None).is_err()); // ragged
        assert!(parse_csv("0,abc\n", "t", LabelColumn::First, None).is_err()); // bad feature
        assert!(parse_csv("0,1.0\nx,2.0\n", "t", LabelColumn::First, None).is_err()); // bad label mid-file
        assert!(parse_csv("", "t", LabelColumn::First, None).is_err()); // empty
        assert!(parse_csv("header,line\n", "t", LabelColumn::First, None).is_err()); // header only
    }

    #[test]
    fn label_exceeding_pinned_classes_is_rejected() {
        assert!(parse_csv("5,1.0\n", "t", LabelColumn::First, Some(3)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lehdc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        std::fs::write(&path, "0,0.5\n1,0.75\n").unwrap();
        let ds = load_csv(&path, LabelColumn::First, None).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(load_csv(Path::new("/nonexistent.csv"), LabelColumn::First, None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
