//! K-fold cross-validation splits.

use crate::dataset::{Dataset, TrainTest};
use crate::error::DatasetError;

/// Produces `k` stratified-ish cross-validation folds of a dataset: fold
/// `i` holds out every `k`-th sample starting at offset `i`, which keeps
/// the class balance of interleaved corpora (like the synthetic generators'
/// round-robin labels) exactly.
///
/// # Examples
///
/// ```
/// use hdc_datasets::{cv::k_folds, Dataset};
///
/// # fn main() -> Result<(), hdc_datasets::DatasetError> {
/// let ds = Dataset::new("t", (0..20).map(|i| i as f32).collect(), vec![0, 1].repeat(5), 2, 2)?;
/// let folds = k_folds(&ds, 5)?;
/// assert_eq!(folds.len(), 5);
/// for fold in &folds {
///     assert_eq!(fold.test.len(), 2);
///     assert_eq!(fold.train.len(), 8);
/// }
/// # Ok(())
/// # }
/// ```
pub fn k_folds(dataset: &Dataset, k: usize) -> Result<Vec<TrainTest>, DatasetError> {
    if k < 2 {
        return Err(DatasetError::InvalidConfig(format!(
            "cross-validation needs at least 2 folds, got {k}"
        )));
    }
    if dataset.len() < k {
        return Err(DatasetError::InvalidConfig(format!(
            "{} samples cannot form {k} folds",
            dataset.len()
        )));
    }
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for i in 0..dataset.len() {
            if i % k == fold {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }
        folds.push(TrainTest::new(
            dataset.subset(&train_idx)?,
            dataset.subset(&test_idx)?,
        )?);
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        Dataset::new(
            "t",
            (0..n * 2).map(|i| i as f32).collect(),
            (0..n).map(|i| i % 3).collect(),
            2,
            3,
        )
        .unwrap()
    }

    #[test]
    fn folds_partition_the_dataset() {
        let ds = dataset(17);
        let folds = k_folds(&ds, 4).unwrap();
        assert_eq!(folds.len(), 4);
        let total_test: usize = folds.iter().map(|f| f.test.len()).sum();
        assert_eq!(total_test, 17, "every sample is held out exactly once");
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), 17);
        }
    }

    #[test]
    fn folds_are_disjoint_across_test_splits() {
        let ds = dataset(12);
        let folds = k_folds(&ds, 3).unwrap();
        // identify rows by their unique first feature value
        let mut seen = std::collections::BTreeSet::new();
        for fold in &folds {
            for i in 0..fold.test.len() {
                let key = fold.test.row(i)[0] as i64;
                assert!(seen.insert(key), "row {key} held out twice");
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn interleaved_labels_stay_balanced() {
        // labels cycle 0,1,2 and k=3 is coprime-ish handling: use k=4
        let ds = dataset(24);
        for fold in k_folds(&ds, 4).unwrap() {
            let counts = fold.test.class_counts();
            assert_eq!(counts, vec![2, 2, 2], "each fold holds 2 of each class");
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let ds = dataset(5);
        assert!(k_folds(&ds, 1).is_err());
        assert!(k_folds(&ds, 6).is_err());
        assert!(k_folds(&ds, 5).is_ok());
    }
}
