//! Per-feature min–max normalization.

use crate::dataset::Dataset;
use crate::error::DatasetError;

/// Per-feature min–max normalizer: fitted on a training split, applied to
/// any split, mapping each feature into `[0, 1]` (test-time values outside
/// the fitted range are clamped).
///
/// HDC level memories quantize a global value range; normalizing every
/// feature into the same range first keeps wide-range features from
/// dominating the quantizer.
///
/// # Examples
///
/// ```
/// use hdc_datasets::{Dataset, MinMaxNormalizer};
///
/// # fn main() -> Result<(), hdc_datasets::DatasetError> {
/// let mut train = Dataset::new("t", vec![0.0, 100.0, 2.0, 300.0], vec![0, 1], 2, 2)?;
/// let norm = MinMaxNormalizer::fit(&train)?;
/// norm.apply(&mut train);
/// assert_eq!(train.row(0), &[0.0, 0.0]);
/// assert_eq!(train.row(1), &[1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxNormalizer {
    mins: Vec<f32>,
    ranges: Vec<f32>, // max - min; 0 for constant features (mapped to 0.5)
}

impl MinMaxNormalizer {
    /// Fits per-feature minima and maxima on a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the dataset contains
    /// non-finite values.
    pub fn fit(dataset: &Dataset) -> Result<Self, DatasetError> {
        let n = dataset.n_features();
        let mut mins = vec![f32::INFINITY; n];
        let mut maxs = vec![f32::NEG_INFINITY; n];
        for i in 0..dataset.len() {
            for (f, &v) in dataset.row(i).iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::InvalidConfig(format!(
                        "non-finite value {v} in feature {f}"
                    )));
                }
                mins[f] = mins[f].min(v);
                maxs[f] = maxs[f].max(v);
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
        Ok(MinMaxNormalizer { mins, ranges })
    }

    /// Reconstructs a normalizer from persisted per-feature minima and
    /// ranges (`max − min`).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if the slices are empty,
    /// have different lengths, or contain non-finite values or negative
    /// ranges.
    pub fn from_parts(mins: Vec<f32>, ranges: Vec<f32>) -> Result<Self, DatasetError> {
        if mins.is_empty() || mins.len() != ranges.len() {
            return Err(DatasetError::InvalidConfig(format!(
                "normalizer needs matching non-empty mins/ranges, got {}/{}",
                mins.len(),
                ranges.len()
            )));
        }
        for (&m, &r) in mins.iter().zip(&ranges) {
            if !m.is_finite() || !r.is_finite() || r < 0.0 {
                return Err(DatasetError::InvalidConfig(format!(
                    "invalid normalizer entry: min {m}, range {r}"
                )));
            }
        }
        Ok(MinMaxNormalizer { mins, ranges })
    }

    /// Number of features this normalizer was fitted for.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// The fitted per-feature minima.
    #[must_use]
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// The fitted per-feature ranges (`max − min`).
    #[must_use]
    pub fn ranges(&self) -> &[f32] {
        &self.ranges
    }

    /// Applies the fitted transform to one raw sample in place.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted feature count.
    pub fn apply_row(&self, row: &mut [f32]) {
        assert_eq!(
            row.len(),
            self.mins.len(),
            "normalizer fitted for a different feature count"
        );
        for (f, v) in row.iter_mut().enumerate() {
            *v = if self.ranges[f] == 0.0 {
                0.5
            } else {
                ((*v - self.mins[f]) / self.ranges[f]).clamp(0.0, 1.0)
            };
        }
    }

    /// Applies the fitted transform in place, clamping to `[0, 1]`.
    /// Constant features map to `0.5`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature count differs from the fitted one.
    pub fn apply(&self, dataset: &mut Dataset) {
        let n = self.mins.len();
        assert_eq!(
            dataset.n_features(),
            n,
            "normalizer fitted for a different feature count"
        );
        for row in dataset.features_mut().chunks_mut(n) {
            self.apply_row(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: &[&[f32]]) -> Dataset {
        let n = rows[0].len();
        let flat: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Dataset::new("t", flat, vec![0; rows.len()], n, 1).unwrap()
    }

    #[test]
    fn normalizes_each_feature_independently() {
        let mut ds = dataset(&[&[0.0, -10.0], &[5.0, 10.0], &[10.0, 0.0]]);
        let norm = MinMaxNormalizer::fit(&ds).unwrap();
        norm.apply(&mut ds);
        assert_eq!(ds.row(0), &[0.0, 0.0]);
        assert_eq!(ds.row(1), &[0.5, 1.0]);
        assert_eq!(ds.row(2), &[1.0, 0.5]);
    }

    #[test]
    fn constant_features_map_to_half() {
        let mut ds = dataset(&[&[7.0, 1.0], &[7.0, 2.0]]);
        let norm = MinMaxNormalizer::fit(&ds).unwrap();
        norm.apply(&mut ds);
        assert_eq!(ds.row(0)[0], 0.5);
        assert_eq!(ds.row(1)[0], 0.5);
    }

    #[test]
    fn test_split_values_are_clamped() {
        let train = dataset(&[&[0.0], &[10.0]]);
        let norm = MinMaxNormalizer::fit(&train).unwrap();
        let mut test = dataset(&[&[-5.0], &[15.0]]);
        norm.apply(&mut test);
        assert_eq!(test.row(0), &[0.0]);
        assert_eq!(test.row(1), &[1.0]);
    }

    #[test]
    fn rejects_non_finite_values() {
        let ds = dataset(&[&[f32::NAN]]);
        assert!(MinMaxNormalizer::fit(&ds).is_err());
    }

    #[test]
    fn parts_roundtrip_reproduces_the_transform() {
        let train = dataset(&[&[0.0, 5.0], &[10.0, 7.0]]);
        let norm = MinMaxNormalizer::fit(&train).unwrap();
        let rebuilt =
            MinMaxNormalizer::from_parts(norm.mins().to_vec(), norm.ranges().to_vec()).unwrap();
        assert_eq!(rebuilt, norm);
        let mut row = [2.5f32, 6.0];
        rebuilt.apply_row(&mut row);
        assert_eq!(row, [0.25, 0.5]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(MinMaxNormalizer::from_parts(vec![], vec![]).is_err());
        assert!(MinMaxNormalizer::from_parts(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(MinMaxNormalizer::from_parts(vec![0.0], vec![-1.0]).is_err());
        assert!(MinMaxNormalizer::from_parts(vec![f32::NAN], vec![1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "different feature count")]
    fn apply_rejects_wrong_width() {
        let norm = MinMaxNormalizer::fit(&dataset(&[&[1.0, 2.0]])).unwrap();
        let mut other = dataset(&[&[1.0]]);
        norm.apply(&mut other);
    }
}
