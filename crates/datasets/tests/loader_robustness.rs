//! Robustness properties for the data loaders: arbitrary bytes and junk
//! text must produce errors, never panics, and valid inputs must roundtrip.

use hdc_datasets::loader::csv::{parse_csv, LabelColumn};
use hdc_datasets::loader::idx::parse_idx;
use testkit::prelude::*;

proptest! {
    #[test]
    fn idx_parser_never_panics_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_idx(&bytes, "fuzz");
    }

    #[test]
    fn idx_parser_accepts_exactly_well_formed_buffers(
        dims in collection::vec(1u32..8, 1..4),
        pad in 0usize..4,
    ) {
        let total: usize = dims.iter().map(|&d| d as usize).product();
        let mut bytes = vec![0, 0, 0x08, dims.len() as u8];
        for &d in &dims {
            bytes.extend_from_slice(&d.to_be_bytes());
        }
        bytes.extend(std::iter::repeat_n(7u8, total));
        // exact payload parses
        let tensor = parse_idx(&bytes, "t").unwrap();
        prop_assert_eq!(tensor.data.len(), total);
        // any extra bytes are rejected
        if pad > 0 {
            bytes.extend(std::iter::repeat_n(0u8, pad));
            prop_assert!(parse_idx(&bytes, "t").is_err());
        }
    }

    #[test]
    fn csv_parser_never_panics_on_arbitrary_text(text in collection::string(0..300)) {
        let _ = parse_csv(&text, "fuzz", LabelColumn::First, None);
        let _ = parse_csv(&text, "fuzz", LabelColumn::Last, Some(3));
    }

    #[test]
    fn csv_roundtrip_of_generated_numeric_data(
        rows in collection::vec(
            (0usize..5, collection::vec(-100.0f32..100.0, 3)),
            1..20,
        )
    ) {
        let mut text = String::new();
        for (label, features) in &rows {
            text.push_str(&format!(
                "{label},{},{},{}\n",
                features[0], features[1], features[2]
            ));
        }
        let ds = parse_csv(&text, "t", LabelColumn::First, Some(5)).unwrap();
        prop_assert_eq!(ds.len(), rows.len());
        prop_assert_eq!(ds.n_features(), 3);
        for (i, (label, features)) in rows.iter().enumerate() {
            prop_assert_eq!(ds.label(i), *label);
            for (a, b) in ds.row(i).iter().zip(features) {
                // values survive the decimal print/parse roundtrip
                prop_assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0));
            }
        }
    }

    #[test]
    fn synthetic_generation_is_shape_correct_for_any_spec(
        n_features in 1usize..20,
        n_classes in 1usize..6,
        protos in 1usize..4,
        noise in 0.0f32..1.0,
        seed in any::<u64>(),
    ) {
        let spec = hdc_datasets::SyntheticSpec::builder("p", n_features, n_classes)
            .prototypes_per_class(protos)
            .noise(noise)
            .train_samples(n_classes * 3)
            .test_samples(n_classes)
            .build()
            .unwrap();
        let data = spec.generate(seed).unwrap();
        prop_assert_eq!(data.train.len(), n_classes * 3);
        prop_assert_eq!(data.train.n_features(), n_features);
        let (lo, hi) = data.train.value_range();
        prop_assert!(lo >= 0.0 && hi <= 1.0);
        // balanced classes
        let counts = data.train.class_counts();
        prop_assert!(counts.iter().all(|&c| c == 3));
    }
}
