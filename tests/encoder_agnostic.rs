//! The paper's claim that LeHDC "can work with any encoders": train with
//! the N-gram encoder instead of the record encoder and verify everything
//! still composes, because the trainers only see `EncodedDataset`.

use lehdc_suite::datasets::BenchmarkProfile;
use lehdc_suite::hdc::{Dim, NgramEncoder};
use lehdc_suite::lehdc::baseline::train_baseline;
use lehdc_suite::lehdc::lehdc_trainer::train_lehdc;
use lehdc_suite::lehdc::{EncodedDataset, LehdcConfig};

#[test]
fn lehdc_trains_on_ngram_encodings() {
    let data = BenchmarkProfile::pamap()
        .with_features(24)
        .with_samples(200, 80)
        .generate(11)
        .unwrap();
    let encoder = NgramEncoder::new(Dim::new(1024), 24, 3, 16, (0.0, 1.0), 11).unwrap();
    let train = EncodedDataset::encode(&data.train, &encoder, 2).unwrap();
    let test = EncodedDataset::encode(&data.test, &encoder, 2).unwrap();

    let baseline = train_baseline(&train, 0).unwrap();
    let (learned, history) =
        train_lehdc(&train, Some(&test), &LehdcConfig::quick().with_epochs(15)).unwrap();

    let base_acc = baseline.accuracy(test.hvs(), test.labels());
    let lehdc_acc = learned.accuracy(test.hvs(), test.labels());
    assert!(
        base_acc > 0.2,
        "n-gram baseline should be above chance, got {base_acc}"
    );
    assert!(
        lehdc_acc >= base_acc,
        "LeHDC on n-gram encodings ({lehdc_acc}) should not trail the baseline ({base_acc})"
    );
    assert_eq!(history.len(), 15);
}

#[test]
fn record_and_ngram_encoders_yield_same_artifact_shape() {
    let data = BenchmarkProfile::pamap()
        .with_features(16)
        .with_samples(50, 20)
        .generate(12)
        .unwrap();
    let record = lehdc_suite::hdc::RecordEncoder::builder(Dim::new(512), 16)
        .seed(1)
        .build()
        .unwrap();
    let ngram = NgramEncoder::new(Dim::new(512), 16, 2, 16, (0.0, 1.0), 1).unwrap();
    let enc_record = EncodedDataset::encode(&data.train, &record, 1).unwrap();
    let enc_ngram = EncodedDataset::encode(&data.train, &ngram, 1).unwrap();
    assert_eq!(enc_record.dim(), enc_ngram.dim());
    assert_eq!(enc_record.len(), enc_ngram.len());
    assert_eq!(enc_record.labels(), enc_ngram.labels());
}
