//! Cross-crate integration tests: dataset generation (`hdc-datasets`) →
//! encoding (`hdc`) → training (`lehdc`/`binnet`) → evaluation and
//! persistence, all through the `lehdc-suite` facade.

use lehdc_suite::datasets::BenchmarkProfile;
use lehdc_suite::hdc::Dim;
use lehdc_suite::lehdc::{io, LehdcConfig, Pipeline, Strategy};

fn small_pipeline(seed: u64) -> Pipeline {
    let data = BenchmarkProfile::ucihar()
        .with_features(32)
        .with_samples(240, 120)
        .generate(seed)
        .expect("generate");
    Pipeline::builder(&data)
        .dim(Dim::new(1024))
        .seed(seed)
        .threads(2)
        .build()
        .expect("build pipeline")
}

#[test]
fn lehdc_generalizes_better_than_baseline() {
    // Averaged over seeds so the assertion is about the method, not one
    // lucky draw.
    let mut base_sum = 0.0;
    let mut lehdc_sum = 0.0;
    for seed in 0..3 {
        let pipeline = small_pipeline(seed);
        base_sum += pipeline
            .run(Strategy::Baseline)
            .unwrap()
            .test_accuracy;
        lehdc_sum += pipeline
            .run(Strategy::Lehdc(LehdcConfig::quick().with_epochs(20)))
            .unwrap()
            .test_accuracy;
    }
    assert!(
        lehdc_sum > base_sum,
        "mean LeHDC test accuracy {:.3} must beat mean baseline {:.3}",
        lehdc_sum / 3.0,
        base_sum / 3.0
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = small_pipeline(9);
    let b = small_pipeline(9);
    for strategy in [Strategy::Baseline, Strategy::retraining_quick()] {
        let oa = a.run(strategy.clone()).unwrap();
        let ob = b.run(strategy).unwrap();
        assert_eq!(oa.test_accuracy, ob.test_accuracy);
        assert_eq!(oa.model, ob.model);
    }
}

#[test]
fn trained_model_roundtrips_through_disk() {
    let pipeline = small_pipeline(4);
    let outcome = pipeline
        .run(Strategy::Lehdc(LehdcConfig::quick().with_epochs(5)))
        .unwrap();
    let model = outcome.model.expect("lehdc yields a model");
    let path = std::env::temp_dir().join("lehdc_integration_model.bin");
    io::save_model(&model, &path).unwrap();
    let restored = io::load_model(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored, model);
    // The restored model classifies identically.
    let test = pipeline.encoded_test();
    assert_eq!(
        restored.classify_all(test.hvs()),
        model.classify_all(test.hvs())
    );
}

#[test]
fn zero_inference_overhead_is_structural() {
    // The paper's headline systems claim: a LeHDC model and a baseline
    // model are the *same artifact* — same type, same dimension, same class
    // count, same storage. Inference code cannot tell them apart.
    let pipeline = small_pipeline(5);
    let base = pipeline.run(Strategy::Baseline).unwrap().model.unwrap();
    let learned = pipeline
        .run(Strategy::Lehdc(LehdcConfig::quick().with_epochs(5)))
        .unwrap()
        .model
        .unwrap();
    assert_eq!(base.dim(), learned.dim());
    assert_eq!(base.n_classes(), learned.n_classes());
    let mut base_bytes = Vec::new();
    let mut learned_bytes = Vec::new();
    io::write_model(&base, &mut base_bytes).unwrap();
    io::write_model(&learned, &mut learned_bytes).unwrap();
    assert_eq!(
        base_bytes.len(),
        learned_bytes.len(),
        "identical storage footprint"
    );
}

#[test]
fn every_strategy_is_above_chance_end_to_end() {
    let pipeline = small_pipeline(6);
    let chance = 1.0 / 6.0;
    for strategy in [
        Strategy::Baseline,
        Strategy::multimodel_quick(),
        Strategy::retraining_quick(),
        Strategy::enhanced_quick(),
        Strategy::adaptive_quick(),
        Strategy::lehdc_quick(),
        Strategy::NonBinary {
            alpha: 1.0,
            iterations: 10,
        },
    ] {
        let name = strategy.name();
        let outcome = pipeline.run(strategy).unwrap();
        assert!(
            outcome.test_accuracy > 1.5 * chance,
            "{name}: test accuracy {:.3} too close to chance",
            outcome.test_accuracy
        );
    }
}

#[test]
fn histories_expose_training_trajectories() {
    let pipeline = small_pipeline(7);
    let outcome = pipeline
        .run(Strategy::Retraining(lehdc_suite::lehdc::RetrainConfig {
            iterations: 8,
            ..Default::default()
        }))
        .unwrap();
    assert_eq!(outcome.history.len(), 8);
    // test accuracy was evaluated every iteration (Fig. 3 support)
    assert_eq!(outcome.history.test_series().len(), 8);
}
