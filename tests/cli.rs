//! End-to-end tests of the `lehdc_cli` binary: train on a CSV, inspect,
//! evaluate, and predict through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lehdc_cli"))
}

/// Writes a small, cleanly separable 3-class CSV and returns its path.
fn write_csv(name: &str, with_labels: bool, rows: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("lehdc_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut text = String::new();
    for i in 0..rows {
        let label = i % 3;
        let base = label as f32 * 0.8;
        let jitter = ((i * 7919) % 100) as f32 / 1000.0;
        let features = format!(
            "{:.4},{:.4},{:.4},{:.4}",
            base + jitter,
            base + 0.1 - jitter,
            2.0 - base + jitter,
            base * 0.5 + jitter
        );
        if with_labels {
            text.push_str(&format!("{label},{features}\n"));
        } else {
            text.push_str(&format!("{features}\n"));
        }
    }
    std::fs::write(&path, text).unwrap();
    path
}

fn model_path(name: &str) -> PathBuf {
    std::env::temp_dir().join("lehdc_cli_tests").join(name)
}

#[test]
fn train_eval_predict_roundtrip() {
    let train_csv = write_csv("train.csv", true, 240);
    let model = model_path("roundtrip.lehdc");

    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "512", "--epochs", "10"])
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LeHDC"), "train output: {stdout}");

    // info reports the persisted configuration
    let out = cli().args(["info", "--model"]).arg(&model).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classes:  3"), "info output: {stdout}");
    assert!(stdout.contains("dim:      512"), "info output: {stdout}");

    // eval on the training file reports high accuracy
    let out = cli()
        .args(["eval", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&train_csv)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let acc_line = stdout.lines().find(|l| l.starts_with("accuracy")).unwrap();
    let pct: f64 = acc_line
        .split(['m', '%'])
        .next()
        .unwrap()
        .trim_start_matches("accuracy:")
        .trim()
        .parse()
        .unwrap();
    assert!(pct > 90.0, "eval accuracy too low: {acc_line}");

    // predict emits one class per feature row
    let feats_csv = write_csv("features.csv", false, 6);
    let out = cli()
        .args(["predict", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&feats_csv)
        .output()
        .unwrap();
    assert!(out.status.success());
    let predictions: Vec<usize> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().parse().unwrap())
        .collect();
    assert_eq!(predictions.len(), 6);
    assert_eq!(predictions, vec![0, 1, 2, 0, 1, 2]);
}

#[test]
fn unknown_commands_and_missing_flags_fail_cleanly() {
    let out = cli().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cli().arg("train").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data is required"));

    let out = cli().output().unwrap();
    assert!(!out.status.success(), "no args prints usage and exits 2");
}

#[test]
fn eval_rejects_feature_count_mismatch() {
    let train_csv = write_csv("train_mismatch.csv", true, 120);
    let model = model_path("mismatch.lehdc");
    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "256", "--epochs", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());

    // a CSV with a different feature count must be rejected with a message
    let dir = std::env::temp_dir().join("lehdc_cli_tests");
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "0,1.0,2.0\n").unwrap();
    let out = cli()
        .args(["eval", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&bad)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("features"));
}

#[test]
fn baseline_strategy_trains_too() {
    let train_csv = write_csv("train_base.csv", true, 90);
    let model = model_path("baseline.lehdc");
    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "256", "--strategy", "baseline"])
        .output()
        .unwrap();
    assert!(out.status.success(), "baseline train failed: {out:?}");
    assert!(model.exists());
}
