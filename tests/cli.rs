//! End-to-end tests of the `lehdc_cli` binary: train on a CSV, inspect,
//! evaluate, and predict through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lehdc_cli"))
}

/// Writes a small, cleanly separable 3-class CSV and returns its path.
fn write_csv(name: &str, with_labels: bool, rows: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("lehdc_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut text = String::new();
    for i in 0..rows {
        let label = i % 3;
        let base = label as f32 * 0.8;
        let jitter = ((i * 7919) % 100) as f32 / 1000.0;
        let features = format!(
            "{:.4},{:.4},{:.4},{:.4}",
            base + jitter,
            base + 0.1 - jitter,
            2.0 - base + jitter,
            base * 0.5 + jitter
        );
        if with_labels {
            text.push_str(&format!("{label},{features}\n"));
        } else {
            text.push_str(&format!("{features}\n"));
        }
    }
    std::fs::write(&path, text).unwrap();
    path
}

fn model_path(name: &str) -> PathBuf {
    std::env::temp_dir().join("lehdc_cli_tests").join(name)
}

#[test]
fn train_eval_predict_roundtrip() {
    let train_csv = write_csv("train.csv", true, 240);
    let model = model_path("roundtrip.lehdc");

    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "512", "--epochs", "10"])
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LeHDC"), "train output: {stdout}");

    // info reports the persisted configuration
    let out = cli().args(["info", "--model"]).arg(&model).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classes:  3"), "info output: {stdout}");
    assert!(stdout.contains("dim:      512"), "info output: {stdout}");

    // eval on the training file reports high accuracy
    let out = cli()
        .args(["eval", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&train_csv)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let acc_line = stdout.lines().find(|l| l.starts_with("accuracy")).unwrap();
    let pct: f64 = acc_line
        .split(['m', '%'])
        .next()
        .unwrap()
        .trim_start_matches("accuracy:")
        .trim()
        .parse()
        .unwrap();
    assert!(pct > 90.0, "eval accuracy too low: {acc_line}");

    // predict emits one class per feature row
    let feats_csv = write_csv("features.csv", false, 6);
    let out = cli()
        .args(["predict", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&feats_csv)
        .output()
        .unwrap();
    assert!(out.status.success());
    let predictions: Vec<usize> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().parse().unwrap())
        .collect();
    assert_eq!(predictions.len(), 6);
    assert_eq!(predictions, vec![0, 1, 2, 0, 1, 2]);
}

#[test]
fn unknown_commands_and_missing_flags_fail_cleanly() {
    let out = cli().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cli().arg("train").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data is required"));

    let out = cli().output().unwrap();
    assert!(!out.status.success(), "no args prints usage and exits 2");
}

#[test]
fn eval_rejects_feature_count_mismatch() {
    let train_csv = write_csv("train_mismatch.csv", true, 120);
    let model = model_path("mismatch.lehdc");
    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "256", "--epochs", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());

    // a CSV with a different feature count must be rejected with a message
    let dir = std::env::temp_dir().join("lehdc_cli_tests");
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "0,1.0,2.0\n").unwrap();
    let out = cli()
        .args(["eval", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&bad)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("features"));
}

#[test]
fn unknown_flags_are_rejected_per_subcommand() {
    let train_csv = write_csv("train_flags.csv", true, 30);
    let model = model_path("flags.lehdc");

    // A flag valid for train is rejected by info, and a typo is rejected
    // with the subcommand's allowlist in the message.
    for (args, bad) in [
        (vec!["train", "--data", "x.csv", "--out", "y", "--holdouts", "0.3"], "--holdouts"),
        (vec!["eval", "--model", "m", "--data", "x.csv", "--strategy", "lehdc"], "--strategy"),
        (vec!["predict", "--model", "m", "--data", "x.csv", "--epochs", "3"], "--epochs"),
        (vec!["info", "--model", "m", "--data", "x.csv"], "--data"),
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("unknown flag {bad}")),
            "{args:?} stderr: {stderr}"
        );
        assert!(stderr.contains("expected one of"), "stderr: {stderr}");
    }

    // Known flags still parse end-to-end.
    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "256", "--epochs", "2", "--threads", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {out:?}");
}

/// Extracts "holdout split: T train / E test samples" from train stdout.
fn split_sizes(stdout: &str) -> (usize, usize) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("holdout split:"))
        .unwrap_or_else(|| panic!("no split line in: {stdout}"));
    let nums: Vec<usize> = line
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .collect();
    (nums[0], nums[1])
}

#[test]
fn holdout_honors_large_fractions_and_tiny_datasets() {
    let model = model_path("holdout.lehdc");

    // --holdout 0.8 used to cap near 50%; it must now hold out 80%.
    let train_csv = write_csv("train_holdout.csv", true, 120);
    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "256", "--epochs", "2", "--holdout", "0.8"])
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {out:?}");
    assert_eq!(split_sizes(&String::from_utf8_lossy(&out.stdout)), (24, 96));

    // Tiny n: both sides of the split stay non-empty and disjoint. With
    // --holdout 0 the old fallback reused a train index as the test index;
    // now one sample moves wholesale to the test side.
    let tiny_csv = write_csv("train_tiny.csv", true, 6);
    let out = cli()
        .args(["train", "--data"])
        .arg(&tiny_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "128", "--epochs", "1", "--holdout", "0.0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "tiny holdout 0.0 failed: {out:?}");
    assert_eq!(split_sizes(&String::from_utf8_lossy(&out.stdout)), (5, 1));

    // An extreme holdout on a tiny dataset honors the fraction (1/5, not a
    // capped 50%) and then fails cleanly when a class loses all coverage —
    // it never silently shrinks the test side.
    let out = cli()
        .args(["train", "--data"])
        .arg(&tiny_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "128", "--epochs", "1", "--holdout", "0.9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert_eq!(split_sizes(&String::from_utf8_lossy(&out.stdout)), (1, 5));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no training samples"),
        "expected class-coverage diagnostic: {out:?}"
    );

    // A single sample cannot be split at all.
    let one_csv = write_csv("train_one.csv", true, 1);
    let out = cli()
        .args(["train", "--data"])
        .arg(&one_csv)
        .args(["--out"])
        .arg(&model)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least 2 samples"));
}

#[test]
fn metrics_recording_emits_json_lines_without_changing_the_model() {
    let train_csv = write_csv("train_metrics.csv", true, 120);
    let plain_model = model_path("metrics_plain.lehdc");
    let recorded_model = model_path("metrics_rec.lehdc");
    let jsonl = model_path("metrics.jsonl");

    let base = |model: &PathBuf| {
        let mut c = cli();
        c.args(["train", "--data"])
            .arg(&train_csv)
            .args(["--out"])
            .arg(model)
            .args(["--dim", "256", "--epochs", "3", "--seed", "5", "--threads", "2"]);
        c
    };
    let out = base(&plain_model).output().unwrap();
    assert!(out.status.success(), "plain train failed: {out:?}");
    let out = base(&recorded_model)
        .args(["--verbose", "--metrics-out"])
        .arg(&jsonl)
        .output()
        .unwrap();
    assert!(out.status.success(), "recorded train failed: {out:?}");

    // Instrumentation must not perturb training: identical artifacts.
    assert_eq!(
        std::fs::read(&plain_model).unwrap(),
        std::fs::read(&recorded_model).unwrap(),
        "recorder changed the saved bundle"
    );

    // --verbose echoes per-epoch spans to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[obs] train_epoch"), "stderr: {stderr}");
    assert!(stderr.contains("samples_per_sec="), "stderr: {stderr}");

    // Every emitted line is a flat JSON object, and the run covers epoch
    // spans, encode/classify throughput, and pool dispatch stats.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let mut events = Vec::new();
    for line in text.lines() {
        lehdc_suite::obs::validate_json_line(line)
            .unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"));
        let event = line
            .split('"')
            .nth(3)
            .unwrap_or_else(|| panic!("no event field in {line:?}"))
            .to_string();
        events.push(event);
    }
    for expected in ["train_epoch", "encode", "strategy_run", "pool", "pool_totals", "metric"] {
        assert!(
            events.iter().any(|e| e == expected),
            "missing event {expected:?} in {events:?}"
        );
    }
    assert_eq!(events.iter().filter(|e| *e == "train_epoch").count(), 3);
}

#[test]
fn baseline_strategy_trains_too() {
    let train_csv = write_csv("train_base.csv", true, 90);
    let model = model_path("baseline.lehdc");
    let out = cli()
        .args(["train", "--data"])
        .arg(&train_csv)
        .args(["--out"])
        .arg(&model)
        .args(["--dim", "256", "--strategy", "baseline"])
        .output()
        .unwrap();
    assert!(out.status.success(), "baseline train failed: {out:?}");
    assert!(model.exists());
}
